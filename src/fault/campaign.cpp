#include "campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <utility>

#include "apps/bc/bc_chinchilla.hpp"
#include "apps/bc/bc_task.hpp"
#include "apps/cuckoo/cuckoo_chinchilla.hpp"
#include "apps/cuckoo/cuckoo_legacy.hpp"
#include "apps/cuckoo/cuckoo_task.hpp"
#include "fault/explore.hpp"
#include "runtimes/chinchilla.hpp"
#include "runtimes/mementos.hpp"
#include "runtimes/plainc.hpp"
#include "support/rng.hpp"
#include "sweep/job_pool.hpp"
#include "tics/runtime.hpp"
#include "timekeeper/timekeeper.hpp"

namespace ticsim::fault {

namespace {

tics::TicsConfig
ticsCampaignConfig()
{
    // Same configuration ticscheck sweeps: short timer-policy epochs so
    // a commit boundary exists every few milliseconds of virtual time.
    tics::TicsConfig c;
    c.segmentBytes = 256;
    c.policy = tics::PolicyKind::Timer;
    c.timerPeriod = 5 * kNsPerMs;
    return c;
}

/** {first, middle, last} occurrences of a counted event, deduplicated. */
std::vector<std::uint64_t>
probePoints(std::uint64_t count)
{
    std::vector<std::uint64_t> out;
    if (count == 0)
        return out;
    for (std::uint64_t occ : {std::uint64_t{1}, (count + 1) / 2, count}) {
        if (std::find(out.begin(), out.end(), occ) == out.end())
            out.push_back(occ);
    }
    return out;
}

/**
 * The systematic schedule set for one pair, derived from the reference
 * census: single cuts at and shortly after every boundary kind's
 * first/middle/last occurrence, a few recovery-of-recovery double
 * cuts, torn writes at each store site's probe points in all three
 * tear modes, and — when the runtime owns a checkpoint area — bit
 * flips into the stale slot right after a commit. Flips are restricted
 * to checkpoint metadata on purpose: no runtime here claims to survive
 * spontaneous retention corruption of raw application state, so a flip
 * into an app region would be an unfair (and uninformative) fault.
 */
std::vector<FaultPlan>
systematicSchedules(const CampaignConfig &cfg, const PairSpec &spec,
                    const EventCensus &census)
{
    std::vector<FaultPlan> out;
    const TimeNs kShortDelay = 200 * kNsPerUs;

    const auto blank = [&cfg] {
        FaultPlan p;
        p.offNs = cfg.offNs;
        return p;
    };
    const auto relCut = [](Boundary b, std::uint64_t occ, TimeNs delay) {
        PowerCut c;
        c.absolute = false;
        c.boundary = b;
        c.occurrence = occ;
        c.delayNs = delay;
        return c;
    };

    // Single cuts around every observed boundary.
    for (int bi = 0; bi < kBoundaryCount; ++bi) {
        const auto b = static_cast<Boundary>(bi);
        for (std::uint64_t occ : probePoints(census.boundary[bi])) {
            for (TimeNs delay : {TimeNs{0}, kShortDelay}) {
                FaultPlan p = blank();
                p.cuts.push_back(relCut(b, occ, delay));
                out.push_back(std::move(p));
            }
        }
    }

    // Recovery-of-recovery: the first cut forces a reboot; the second
    // kills that reboot mid-restore (or right at power-on).
    for (std::uint64_t occ :
         probePoints(census.boundary[static_cast<int>(Boundary::CommitEnd)])) {
        {
            FaultPlan p = blank();
            p.cuts.push_back(relCut(Boundary::CommitEnd, occ, 0));
            p.cuts.push_back(relCut(Boundary::BootRestore,
                                    census.boundary[static_cast<int>(
                                        Boundary::BootRestore)] +
                                        1,
                                    0));
            out.push_back(std::move(p));
        }
        {
            FaultPlan p = blank();
            p.cuts.push_back(relCut(Boundary::CommitEnd, occ, 0));
            p.cuts.push_back(relCut(Boundary::Boot, 2, 0));
            out.push_back(std::move(p));
        }
    }

    // Torn stores at each site's probe points, all three modes.
    for (int si = 0; si < mem::kStoreSiteCount; ++si) {
        const auto site = static_cast<mem::StoreSite>(si);
        const std::uint32_t maxB = census.maxStoreBytes[si];
        for (std::uint64_t occ : probePoints(census.stores[si])) {
            for (int m = 0; m < 3; ++m) {
                TornWrite t;
                t.site = site;
                t.occurrence = occ;
                t.mode = static_cast<TearMode>(m);
                t.keepBytes = t.mode == TearMode::GarbageTail
                                  ? std::min<std::uint32_t>(4, maxB / 2)
                                  : maxB / 2;
                FaultPlan p = blank();
                p.tears.push_back(t);
                out.push_back(std::move(p));
            }
        }
    }

    // Stale-slot retention flips: commit #occ writes generation occ
    // into slot (occ-1)%2, so the slot left stale afterwards is occ%2.
    // Recovery must keep preferring the fresh slot whatever happens to
    // the stale header (generation bit, CRC bit) or stale image.
    if (!spec.ckptPrefix.empty()) {
        const std::uint64_t commits =
            census.boundary[static_cast<int>(Boundary::CommitEnd)];
        for (std::uint64_t occ : probePoints(commits)) {
            const int stale = static_cast<int>(occ % 2);
            const std::string hdr =
                spec.ckptPrefix + ".hdr" + std::to_string(stale);
            const std::string img =
                spec.ckptPrefix + ".image" + std::to_string(stale);
            const auto flipPlan = [&](const std::string &region,
                                      std::uint32_t offset,
                                      std::uint8_t mask) {
                FaultPlan p = blank();
                p.cuts.push_back(relCut(Boundary::CommitEnd, occ, 0));
                BitFlip f;
                f.outageIndex = 1;
                f.region = region;
                f.offset = offset;
                f.mask = mask;
                p.flips.push_back(std::move(f));
                return p;
            };
            out.push_back(flipPlan(hdr, 4, 0x40));   // generation
            out.push_back(flipPlan(hdr, 20, 0x10));  // stored CRC
            out.push_back(flipPlan(img, 16, 0x01));  // stale image byte
        }
    }

    return out;
}

/** The seeded-random band: 1-2 boundary cuts with random delays, plus
 *  an occasional torn store. Same seed → same schedules. */
std::vector<FaultPlan>
randomSchedules(const CampaignConfig &cfg, const EventCensus &census,
                Rng &rng)
{
    std::vector<int> liveBoundaries;
    for (int bi = 0; bi < kBoundaryCount; ++bi)
        if (census.boundary[bi] > 0)
            liveBoundaries.push_back(bi);
    std::vector<int> liveSites;
    for (int si = 0; si < mem::kStoreSiteCount; ++si)
        if (census.stores[si] > 0)
            liveSites.push_back(si);

    std::vector<FaultPlan> out;
    for (std::uint32_t i = 0; i < cfg.randomSchedules; ++i) {
        FaultPlan p;
        p.offNs = cfg.offNs;
        if (!liveBoundaries.empty()) {
            const std::uint64_t nCuts = 1 + rng.below(2);
            for (std::uint64_t j = 0; j < nCuts; ++j) {
                const int bi = liveBoundaries[static_cast<std::size_t>(
                    rng.below(liveBoundaries.size()))];
                PowerCut c;
                c.absolute = false;
                c.boundary = static_cast<Boundary>(bi);
                c.occurrence = 1 + rng.below(census.boundary[bi]);
                c.delayNs =
                    static_cast<TimeNs>(rng.below(2 * kNsPerMs + 1));
                p.cuts.push_back(c);
            }
        }
        if (!liveSites.empty() && rng.chance(0.35)) {
            const int si = liveSites[static_cast<std::size_t>(
                rng.below(liveSites.size()))];
            TornWrite t;
            t.site = static_cast<mem::StoreSite>(si);
            t.occurrence = 1 + rng.below(census.stores[si]);
            t.mode = static_cast<TearMode>(rng.below(3));
            t.keepBytes = static_cast<std::uint32_t>(
                rng.below(census.maxStoreBytes[si] + 1));
            p.tears.push_back(t);
        }
        if (!p.empty())
            out.push_back(std::move(p));
    }
    return out;
}

template <typename MakeRt, typename MakeApp>
PairSpec
makePairSpec(std::string app, std::string runtime, bool isProtected,
             std::string ckptPrefix, MakeRt makeRt, MakeApp makeApp)
{
    PairSpec s;
    s.app = std::move(app);
    s.runtime = std::move(runtime);
    s.isProtected = isProtected;
    s.ckptPrefix = std::move(ckptPrefix);
    s.make = [makeRt, makeApp](board::Board &b) {
        PairEnv env;
        auto rt = makeRt();
        auto appInst = makeApp(b, *rt);
        // Task-model apps register their entry with the runtime; the
        // others expose a legacy main(). The raw pointer captures stay
        // valid for env's lifetime because env.app owns the object.
        auto *ap = appInst.get();
        if constexpr (requires { appInst->main(); })
            env.entry = [ap] { ap->main(); };
        env.verify = [ap] { return ap->verify(); };
        env.app = std::shared_ptr<void>(std::move(appInst));
        env.runtime = std::move(rt);
        return env;
    };
    s.run = [make = s.make](board::Board &b, TimeNs budget) {
        PairEnv env = make(b);
        PairRunOutcome out;
        out.res = b.run(*env.runtime, env.entry, budget);
        out.verified = env.verify();
        out.snap = analysis::ReplayOracle::capture(
            b.nvram(), analysis::ReplayOracle::appStateFilter());
        return out;
    };
    return s;
}

} // namespace

PairRunOutcome
runPairWithPlan(const CampaignConfig &cfg, const PairSpec &spec,
                const FaultPlan &plan, bool observe)
{
    board::BoardConfig bcfg;
    bcfg.seed = cfg.seed;

    auto supply = std::make_unique<FaultedSupply>(
        std::make_unique<energy::ContinuousSupply>(), plan.offNs);
    if (!observe) {
        std::vector<TimeNs> abs;
        for (const auto &c : plan.cuts)
            if (c.absolute)
                abs.push_back(c.atNs);
        std::sort(abs.begin(), abs.end());
        supply->scheduleAbsolute(std::move(abs));
    }
    FaultedSupply *sup = supply.get();

    board::Board board(bcfg, std::move(supply),
                       std::make_unique<timekeeper::PerfectTimekeeper>());
    FaultInjector inj(board, *sup, plan, observe);
    mem::ScopedAccessSink sink(&inj);
    mem::ScopedStoreGate gate(&inj);

    PairRunOutcome out = spec.run(board, cfg.budget);
    out.census = inj.census();
    out.firedCuts = sup->firedAt();
    out.injectedDeaths = sup->injectedDeaths();
    out.tearsApplied = inj.tearsApplied();
    out.flipsApplied = inj.flipsApplied();

    // Per-atom firing records in planFromAtoms order. Relative cuts
    // were tracked by the injector; absolute cuts are matched against
    // the scheduled instants the supply consumed.
    std::vector<TimeNs> absFired = sup->absFiredAt();
    for (std::size_t i = 0; i < plan.cuts.size(); ++i) {
        AtomFiring a = inj.cutFirings()[i];
        if (plan.cuts[i].absolute) {
            const auto it = std::find(absFired.begin(), absFired.end(),
                                      plan.cuts[i].atNs);
            if (it != absFired.end()) {
                a.fired = true;
                a.at = plan.cuts[i].atNs;
                absFired.erase(it);
            }
        }
        out.atomFirings.push_back(a);
    }
    for (const AtomFiring &a : inj.tearFirings())
        out.atomFirings.push_back(a);
    for (const AtomFiring &a : inj.flipFirings())
        out.atomFirings.push_back(a);
    return out;
}

Classification
classifyOutcome(const PairRunOutcome &ref, const PairRunOutcome &sub)
{
    Classification c;
    const auto diff = analysis::ReplayOracle::diff(ref.snap, sub.snap);
    c.divergentBytes = diff.divergentBytes;
    if (diff.regionMismatches > 0)
        c.kind = "layout";
    else if (sub.res.starved)
        c.kind = "starved";
    else if (!sub.res.completed)
        c.kind = "not-completed";
    else if (!sub.verified)
        c.kind = "verify-failed";
    else if (diff.divergentBytes > 0)
        c.kind = "diverged";
    return c;
}

FaultPlan
planFromAtoms(const FaultPlan &full, const std::vector<std::size_t> &keep)
{
    FaultPlan p;
    p.offNs = full.offNs;
    for (const std::size_t idx : keep) {
        if (idx < full.cuts.size()) {
            p.cuts.push_back(full.cuts[idx]);
        } else if (idx < full.cuts.size() + full.tears.size()) {
            p.tears.push_back(full.tears[idx - full.cuts.size()]);
        } else {
            p.flips.push_back(
                full.flips[idx - full.cuts.size() - full.tears.size()]);
        }
    }
    return p;
}

Violation
shrinkPlanWith(const PairSpec &spec, const FaultPlan &original,
               const Classification &firstSeen, const PlanEval &eval)
{
    Violation v;
    v.app = spec.app;
    v.runtime = spec.runtime;
    v.originalPlan = original.format();
    v.kind = firstSeen.kind;
    v.divergentBytes = firstSeen.divergentBytes;

    const auto violates = [&](const FaultPlan &p,
                              Classification *out = nullptr) {
        const PlanProbe probe = eval(p);
        ++v.shrinkRuns;
        v.shrinkCycles += probe.cycles;
        if (out)
            *out = probe.cls;
        return !probe.cls.kind.empty();
    };

    std::vector<std::size_t> atoms(original.atomCount());
    for (std::size_t i = 0; i < atoms.size(); ++i)
        atoms[i] = i;

    std::size_t n = 2;
    while (atoms.size() >= 2) {
        const std::size_t chunk = (atoms.size() + n - 1) / n;
        bool reduced = false;
        for (std::size_t start = 0;
             start < atoms.size() && !reduced; start += chunk) {
            const std::size_t end =
                std::min(start + chunk, atoms.size());
            std::vector<std::size_t> subset(atoms.begin() + start,
                                            atoms.begin() + end);
            std::vector<std::size_t> complement;
            complement.insert(complement.end(), atoms.begin(),
                              atoms.begin() + start);
            complement.insert(complement.end(), atoms.begin() + end,
                              atoms.end());
            if (subset.size() < atoms.size() &&
                violates(planFromAtoms(original, subset))) {
                atoms = std::move(subset);
                n = 2;
                reduced = true;
            } else if (!complement.empty() &&
                       complement.size() < atoms.size() &&
                       violates(planFromAtoms(original, complement))) {
                atoms = std::move(complement);
                n = n > 2 ? n - 1 : 2;
                reduced = true;
            }
        }
        if (!reduced) {
            if (n >= atoms.size())
                break;
            n = std::min(atoms.size(), n * 2);
        }
    }

    FaultPlan minimized = planFromAtoms(original, atoms);

    if (!minimized.cuts.empty() && minimized.tears.empty() &&
        minimized.flips.empty()) {
        const PlanProbe probe = eval(minimized);
        ++v.shrinkRuns;
        v.shrinkCycles += probe.cycles;
        if (!probe.cls.kind.empty() && !probe.firedCuts.empty()) {
            FaultPlan absolute;
            absolute.offNs = minimized.offNs;
            for (const TimeNs t : probe.firedCuts) {
                PowerCut c;
                c.absolute = true;
                c.atNs = t;
                absolute.cuts.push_back(c);
            }
            if (violates(absolute))
                minimized = std::move(absolute);
        }
    }

    // Final confirmation replay of whatever we are about to report.
    Classification fin;
    v.replayVerified = violates(minimized, &fin);
    if (v.replayVerified) {
        v.kind = fin.kind;
        v.divergentBytes = fin.divergentBytes;
    }
    v.plan = minimized.format();
    return v;
}

Violation
shrinkViolationFromBoot(const CampaignConfig &cfg, const PairSpec &spec,
                        const PairRunOutcome &ref, const FaultPlan &original,
                        const Classification &firstSeen)
{
    return shrinkPlanWith(
        spec, original, firstSeen, [&](const FaultPlan &p) {
            const PairRunOutcome sub = runPairWithPlan(cfg, spec, p, false);
            PlanProbe probe;
            probe.cls = classifyOutcome(ref, sub);
            probe.firedCuts = sub.firedCuts;
            probe.cycles = sub.res.cycles;
            return probe;
        });
}

std::vector<PairSpec>
campaignPairs(const CampaignConfig &cfg)
{
    const apps::BcParams bcParams = cfg.bc;
    const apps::CuckooParams cuckooParams = cfg.cuckoo;

    const auto bcLegacy = [bcParams](board::Board &b, auto &rt) {
        return std::make_unique<apps::BcLegacyApp>(b, rt, bcParams);
    };
    const auto cuckooLegacy = [cuckooParams](board::Board &b, auto &rt) {
        return std::make_unique<apps::CuckooLegacyApp>(b, rt,
                                                       cuckooParams);
    };
    const auto makeTics = [] {
        return std::make_unique<tics::TicsRuntime>(ticsCampaignConfig());
    };
    const auto makeMementos = [] {
        return std::make_unique<runtimes::MementosRuntime>();
    };
    const auto makeChinchilla = [] {
        return std::make_unique<runtimes::ChinchillaRuntime>();
    };
    const auto makeTask = [] {
        return std::make_unique<taskrt::TaskRuntime>();
    };
    const auto makePlain = [] {
        return std::make_unique<runtimes::PlainCRuntime>();
    };

    std::vector<PairSpec> out;
    out.push_back(makePairSpec("BC", "TICS", true, "tics.ckpt",
                               makeTics, bcLegacy));
    out.push_back(makePairSpec("BC", "MementOS-like", true,
                               "mementos.ckpt", makeMementos, bcLegacy));
    out.push_back(makePairSpec(
        "BC", "Chinchilla-like", true, "chinchilla.ckpt", makeChinchilla,
        [bcParams](board::Board &b, auto &rt) {
            return std::make_unique<apps::BcChinchillaApp>(b, rt,
                                                           bcParams);
        }));
    out.push_back(makePairSpec(
        "BC", "Alpaca-like", true, "", makeTask,
        [bcParams](board::Board &b, auto &rt) {
            return std::make_unique<apps::BcTaskApp>(b, rt, bcParams);
        }));
    out.push_back(makePairSpec("BC", "plain-C", false, "", makePlain,
                               bcLegacy));

    out.push_back(makePairSpec("Cuckoo", "TICS", true, "tics.ckpt",
                               makeTics, cuckooLegacy));
    out.push_back(makePairSpec("Cuckoo", "MementOS-like", true,
                               "mementos.ckpt", makeMementos,
                               cuckooLegacy));
    out.push_back(makePairSpec(
        "Cuckoo", "Chinchilla-like", true, "chinchilla.ckpt",
        makeChinchilla, [cuckooParams](board::Board &b, auto &rt) {
            return std::make_unique<apps::CuckooChinchillaApp>(
                b, rt, cuckooParams);
        }));
    out.push_back(makePairSpec(
        "Cuckoo", "Alpaca-like", true, "", makeTask,
        [cuckooParams](board::Board &b, auto &rt) {
            return std::make_unique<apps::CuckooTaskApp>(b, rt,
                                                         cuckooParams);
        }));
    out.push_back(makePairSpec("Cuckoo", "plain-C", false, "",
                               makePlain, cuckooLegacy));
    return out;
}

bool
CampaignReport::ok() const
{
    if (pairs.empty())
        return false;
    bool unprotectedExposed = false;
    for (const auto &p : pairs) {
        if (!p.refCompleted)
            return false;
        if (p.isProtected && p.violations > 0)
            return false;
        if (!p.isProtected && p.violations > 0)
            unprotectedExposed = true;
        for (const auto &v : p.found)
            if (!v.replayVerified)
                return false;
    }
    return unprotectedExposed;
}

CampaignReport
runCampaign(const CampaignConfig &cfg)
{
    // Phased execution on the sweep JobPool. Every subject run uses a
    // fresh Board and depends only on (pair, plan), so runs can
    // execute on any worker in any order; the report is assembled
    // from per-index slots in (pair, schedule) order afterwards,
    // which makes the output identical for every job count (the
    // wall-clock cap is the only nondeterministic input, exactly as
    // in the serial driver).
    CampaignReport rep;
    const auto wallStart = std::chrono::steady_clock::now();
    const auto timeUp = [&] {
        if (cfg.maxSeconds <= 0)
            return false;
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - wallStart;
        return elapsed.count() >= cfg.maxSeconds;
    };

    const sweep::JobPool pool(cfg.jobs);
    const auto pairs = campaignPairs(cfg);

    // Phase 1: all failure-free reference runs (observe mode).
    std::vector<PairRunOutcome> refs(pairs.size());
    pool.run(pairs.size(), [&](std::size_t pi) {
        refs[pi] = runPairWithPlan(cfg, pairs[pi], FaultPlan{},
                                   /*observe=*/true);
    });

    // Phase 2 (serial, cheap): schedule generation from each census.
    // The Rng stream is a pure function of (seed, pair index).
    std::vector<std::vector<FaultPlan>> schedules(pairs.size());
    for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
        if (!refs[pi].res.completed)
            continue;
        Rng rng(cfg.seed ^ (0x5FA017ULL + pi * 0x9E3779B97F4A7C15ULL));
        schedules[pi] = systematicSchedules(cfg, pairs[pi],
                                            refs[pi].census);
        for (auto &p : randomSchedules(cfg, refs[pi].census, rng))
            schedules[pi].push_back(std::move(p));
    }

    // Phase 3: every (pair, schedule) subject run, flattened.
    struct SubjectTask {
        std::size_t pi = 0;
        std::size_t si = 0;
        bool ran = false;
        std::uint64_t injectedDeaths = 0;
        std::uint64_t tearsApplied = 0;
        std::uint64_t flipsApplied = 0;
        Classification cls;
    };
    std::vector<SubjectTask> tasks;
    for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
        for (std::size_t si = 0; si < schedules[pi].size(); ++si) {
            SubjectTask t;
            t.pi = pi;
            t.si = si;
            tasks.push_back(std::move(t));
        }
    }
    std::atomic<bool> truncated{false};
    pool.run(tasks.size(), [&](std::size_t ti) {
        SubjectTask &t = tasks[ti];
        if (timeUp()) {
            truncated.store(true, std::memory_order_relaxed);
            return;
        }
        const PairRunOutcome sub = runPairWithPlan(
            cfg, pairs[t.pi], schedules[t.pi][t.si], false);
        t.ran = true;
        t.injectedDeaths = sub.injectedDeaths;
        t.tearsApplied = sub.tearsApplied;
        t.flipsApplied = sub.flipsApplied;
        t.cls = classifyOutcome(refs[t.pi], sub);
    });

    // Phase 4: shrink every violating schedule. A shrink is a pure
    // function of (pair, reference, original plan), so these also
    // parallelize; shrinkRuns are attributed per violation.
    std::vector<std::size_t> violating;
    for (std::size_t ti = 0; ti < tasks.size(); ++ti)
        if (tasks[ti].ran && !tasks[ti].cls.kind.empty())
            violating.push_back(ti);
    std::vector<Violation> shrunk(violating.size());
    pool.run(violating.size(), [&](std::size_t vi) {
        if (timeUp()) {
            // Report the unshrunk schedule rather than dropping the
            // violation: a truncated campaign must still fail ok().
            truncated.store(true, std::memory_order_relaxed);
            const SubjectTask &t = tasks[violating[vi]];
            Violation v;
            v.app = pairs[t.pi].app;
            v.runtime = pairs[t.pi].runtime;
            v.originalPlan = schedules[t.pi][t.si].format();
            v.plan = v.originalPlan;
            v.kind = t.cls.kind;
            v.divergentBytes = t.cls.divergentBytes;
            v.replayVerified = false;
            shrunk[vi] = std::move(v);
            return;
        }
        const SubjectTask &t = tasks[violating[vi]];
        shrunk[vi] =
            cfg.forkShrink
                ? forkShrinkViolation(cfg, pairs[t.pi], refs[t.pi],
                                      schedules[t.pi][t.si], t.cls)
                : shrinkViolationFromBoot(cfg, pairs[t.pi], refs[t.pi],
                                          schedules[t.pi][t.si], t.cls);
    });

    // Phase 5 (serial): assemble in (pair, schedule) order.
    std::size_t ti = 0;
    std::size_t vi = 0;
    for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
        PairReport pr;
        pr.app = pairs[pi].app;
        pr.runtime = pairs[pi].runtime;
        pr.isProtected = pairs[pi].isProtected;
        pr.refCompleted = refs[pi].res.completed;

        std::set<std::string> minimizedSeen;
        for (std::size_t si = 0; si < schedules[pi].size();
             ++si, ++ti) {
            const SubjectTask &t = tasks[ti];
            if (!t.ran)
                continue;
            ++pr.schedules;
            pr.injectedDeaths += t.injectedDeaths;
            pr.tearsApplied += t.tearsApplied;
            pr.flipsApplied += t.flipsApplied;
            if (t.cls.kind.empty())
                continue;
            ++pr.violations;
            Violation v = shrunk[vi++];
            // Distinct failing schedules often shrink to the same
            // minimal reproducer; report each reproducer once.
            if (minimizedSeen.insert(v.plan).second)
                pr.found.push_back(std::move(v));
        }

        rep.totalSchedules += pr.schedules;
        rep.totalViolations += pr.violations;
        rep.pairs.push_back(std::move(pr));
    }
    rep.truncated = truncated.load();
    return rep;
}

bool
replayPlan(const CampaignConfig &cfg, const std::string &pairName,
           const FaultPlan &plan, std::string &verdictOut)
{
    ReplayDetail detail;
    if (!replayPlanDetailed(cfg, pairName, plan, detail))
        return false;
    verdictOut = detail.verdict;
    return true;
}

namespace {

/** Serialize one atom of @p plan on its own, without the off suffix. */
std::string
formatAtom(const FaultPlan &plan, std::size_t idx)
{
    const FaultPlan one = planFromAtoms(plan, {idx});
    std::string s = one.format();
    const auto off = s.rfind(";off:");
    if (off != std::string::npos)
        s.resize(off);
    return s;
}

} // namespace

bool
replayPlanDetailed(const CampaignConfig &cfg, const std::string &pairName,
                   const FaultPlan &plan, ReplayDetail &out)
{
    for (const auto &spec : campaignPairs(cfg)) {
        if (spec.app + "/" + spec.runtime != pairName)
            continue;
        const PairRunOutcome ref =
            runPairWithPlan(cfg, spec, FaultPlan{}, /*observe=*/true);
        if (!ref.res.completed) {
            out.verdict = "reference-incomplete";
            return true;
        }
        const PairRunOutcome sub = runPairWithPlan(cfg, spec, plan, false);
        const Classification c = classifyOutcome(ref, sub);
        out.verdict = c.kind.empty() ? "consistent" : c.kind;
        for (std::size_t i = 0; i < sub.atomFirings.size(); ++i) {
            ReplayAtomStatus st;
            st.atom = formatAtom(plan, i);
            st.fired = sub.atomFirings[i].fired;
            st.occurrence = sub.atomFirings[i].occurrence;
            st.at = sub.atomFirings[i].at;
            out.atoms.push_back(std::move(st));
        }
        return true;
    }
    return false;
}

Table
campaignTable(const CampaignReport &report)
{
    Table t("ticsfault: fault-injection campaign per scenario");
    t.header({"App", "Runtime", "Ref", "Schedules", "Deaths", "Tears",
              "Flips", "Violations", "Verdict"});
    for (const auto &p : report.pairs) {
        const char *verdict;
        if (!p.refCompleted)
            verdict = "FAIL (reference)";
        else if (p.isProtected)
            verdict = p.violations == 0 ? "survives" : "FAIL";
        else
            verdict =
                p.violations > 0 ? "unsafe (expected)" : "FAIL (no expo)";
        t.row()
            .cell(p.app)
            .cell(p.runtime)
            .cell(p.refCompleted ? "done" : "FAIL")
            .cell(p.schedules)
            .cell(p.injectedDeaths)
            .cell(p.tearsApplied)
            .cell(p.flipsApplied)
            .cell(p.violations)
            .cell(verdict);
    }
    return t;
}

Table
violationTable(const CampaignReport &report)
{
    Table t("ticsfault: minimized violations");
    t.header({"App", "Runtime", "Kind", "Div B", "Runs", "Replays",
              "Minimized schedule"});
    for (const auto &p : report.pairs) {
        for (const auto &v : p.found) {
            t.row()
                .cell(v.app)
                .cell(v.runtime)
                .cell(v.kind)
                .cell(v.divergentBytes)
                .cell(static_cast<std::uint64_t>(v.shrinkRuns))
                .cell(v.replayVerified ? "yes" : "NO")
                .cell(v.plan);
        }
    }
    return t;
}

} // namespace ticsim::fault
