/**
 * @file
 * Fault plans: machine-checkable descriptions of adversarial power
 * behaviour (DESIGN.md Section 8).
 *
 * A FaultPlan is the unit the campaign driver sweeps, the shrinker
 * minimizes, and `ticsfault --replay` re-executes. It composes three
 * fault kinds:
 *
 *  - PowerCut: cut power either at an absolute virtual time or a fixed
 *    delay after the Nth occurrence of an instrumented boundary event
 *    (checkpoint-commit start/end, boot restore, peripheral send,
 *    persistent-time read, boot). Boundary anchoring is what makes the
 *    systematic sweep adversarial: the cuts land exactly around the
 *    protocol steps a runtime must make failure-atomic.
 *  - TornWrite: abort the Nth gated NV store of a given site partway
 *    through (prefix kept, garbage tail, or interleaved old/new
 *    words), then fail power immediately.
 *  - BitFlip: flip one bit of a named NV region during the Nth off
 *    window (retention corruption between charge windows).
 *
 * Plans serialize to a compact one-line string so a minimized failing
 * schedule travels through CI artifacts and bug reports verbatim:
 *
 *   cut@commit:3+5000;tear@hdr-store:2/prefix:8;flip@1:tics.ckpt.hdr0+4&0x40;off:12000000
 */

#ifndef TICSIM_FAULT_PLAN_HPP
#define TICSIM_FAULT_PLAN_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "mem/store_gate.hpp"
#include "support/units.hpp"

namespace ticsim::fault {

/** Instrumented boundary events a PowerCut can anchor to. */
enum class Boundary : std::uint8_t {
    Boot,          ///< power-on (AccessSink::powerOn)
    CommitStart,   ///< checkpoint commit protocol begins
    CommitEnd,     ///< forward progress committed (AccessSink::commit)
    BootRestore,   ///< boot-time restore from a checkpoint begins
    PeripheralSend,///< externally visible transmission
    TimeRead,      ///< persistent-clock read
};

constexpr int kBoundaryCount = 6;

/** Stable short name used in plan strings ("boot", "commit-start",
 *  "commit", "restore", "send", "time"). */
const char *boundaryName(Boundary b);

/** Inverse of boundaryName(); false when @p s names no boundary. */
bool parseBoundary(const std::string &s, Boundary &out);

/** One power cut: absolute, or delayNs after boundary occurrence N. */
struct PowerCut {
    bool absolute = false;
    TimeNs atNs = 0;             ///< absolute mode: cut instant
    Boundary boundary = Boundary::CommitEnd;
    std::uint64_t occurrence = 1;///< 1-based, cumulative across the run
    TimeNs delayNs = 0;
};

/** How a torn multi-byte NV store leaves its destination. */
enum class TearMode : std::uint8_t {
    Prefix,      ///< first keepBytes new, tail untouched (old bytes)
    GarbageTail, ///< first keepBytes new, tail filled with garbage
    Interleaved, ///< even 4-byte words new, odd words old
};

const char *tearModeName(TearMode m);
bool parseTearMode(const std::string &s, TearMode &out);

/** Abort the Nth gated store of @p site partway, then fail power. */
struct TornWrite {
    mem::StoreSite site = mem::StoreSite::AppGlobal;
    std::uint64_t occurrence = 1; ///< 1-based, per site, cumulative
    TearMode mode = TearMode::Prefix;
    std::uint32_t keepBytes = 0;  ///< faithful prefix length
};

/** Flip @p mask at @p region+offset during off window @p outageIndex. */
struct BitFlip {
    std::uint64_t outageIndex = 1; ///< 1-based off-window ordinal
    std::string region;            ///< NV region name (NvRam::regions)
    std::uint32_t offset = 0;
    std::uint8_t mask = 0x01;
};

/**
 * A complete fault schedule. Empty plans inject nothing (the campaign
 * reference runs use one in observe mode to count boundary events).
 */
struct FaultPlan {
    std::vector<PowerCut> cuts;
    std::vector<TornWrite> tears;
    std::vector<BitFlip> flips;
    /** Off time after every injected death (cut or tear). */
    TimeNs offNs = 12 * kNsPerMs;

    bool empty() const
    {
        return cuts.empty() && tears.empty() && flips.empty();
    }
    /** Number of individually removable faults (shrinker granularity). */
    std::size_t atomCount() const
    {
        return cuts.size() + tears.size() + flips.size();
    }

    /** Canonical one-line serialization (';'-joined atoms + "off:"). */
    std::string format() const;

    /**
     * Parse a plan string produced by format() (or hand-written).
     * @return false (with *err set when non-null) on malformed input;
     *         @p out is untouched on failure.
     */
    static bool parse(const std::string &s, FaultPlan &out,
                      std::string *err = nullptr);
};

} // namespace ticsim::fault

#endif // TICSIM_FAULT_PLAN_HPP
