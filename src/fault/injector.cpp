#include "injector.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "mem/journal.hpp"
#include "support/logging.hpp"

namespace ticsim::fault {

// ---- FaultedSupply ---------------------------------------------------------

FaultedSupply::FaultedSupply(std::unique_ptr<energy::Supply> inner,
                             TimeNs offNs)
    : inner_(std::move(inner)), offNs_(offNs)
{
    if (!inner_)
        fatal("fault: null inner supply");
}

void
FaultedSupply::scheduleAbsolute(std::vector<TimeNs> cutsAt)
{
    for (std::size_t i = 1; i < cutsAt.size(); ++i) {
        if (cutsAt[i] < cutsAt[i - 1])
            fatal("fault: absolute cuts must be ascending");
    }
    abs_ = std::move(cutsAt);
    nextAbs_ = 0;
}

bool
FaultedSupply::armCutAfter(TimeNs delay)
{
    if (havePending_ || haveArmed_)
        return false; // first armed boundary wins
    havePending_ = true;
    pendingDelay_ = delay;
    return true;
}

energy::DrainResult
FaultedSupply::drain(TimeNs now, TimeNs dur, Watts load)
{
    if (havePending_) {
        haveArmed_ = true;
        armedAt_ = now + pendingDelay_;
        havePending_ = false;
    }
    constexpr TimeNs kNever = std::numeric_limits<TimeNs>::max();
    const TimeNs absCut = nextAbs_ < abs_.size() ? abs_[nextAbs_] : kNever;
    const TimeNs armCut = haveArmed_ ? armedAt_ : kNever;
    const TimeNs cut = std::min(absCut, armCut);
    if (cut == kNever || now + dur <= cut) {
        if (cut != kNever && cut <= now) {
            // Past-due cut (armed during off/boot work): re-entrant
            // death before any of this charge runs.
        } else {
            return inner_->drain(now, dur, load);
        }
    }
    const TimeNs ranFor = cut > now ? cut - now : 0;
    if (ranFor > 0) {
        const energy::DrainResult pre = inner_->drain(now, ranFor, load);
        if (pre.died) {
            // The inner supply browned out organically before the cut
            // instant: that death wins and keeps the inner off time.
            // The cut stays scheduled and fires past-due on the next
            // drain, like any cut landing in an off window.
            return pre;
        }
    }
    if (cut == armCut) {
        haveArmed_ = false;
    } else {
        absFired_.push_back(abs_[nextAbs_]);
        ++nextAbs_;
    }
    forced_ = true;
    ++injected_;
    fired_.push_back(cut > now ? cut : now);
    ++stats_.counter("injectedCuts");
    return {true, ranFor};
}

TimeNs
FaultedSupply::offTimeAfterDeath(TimeNs deathTime)
{
    if (forced_) {
        forced_ = false;
        return offNs_;
    }
    return inner_->offTimeAfterDeath(deathTime);
}

void
FaultedSupply::reset()
{
    inner_->reset();
    nextAbs_ = 0;
    havePending_ = false;
    haveArmed_ = false;
    forced_ = false;
    injected_ = 0;
    fired_.clear();
    absFired_.clear();
}

void
FaultedSupply::saveState(StateWriter &w) const
{
    w.put(nextAbs_);
    w.put(havePending_);
    w.put(pendingDelay_);
    w.put(haveArmed_);
    w.put(armedAt_);
    w.put(forced_);
    w.put(injected_);
    w.put(fired_.size());
    for (const TimeNs t : fired_)
        w.put(t);
    w.put(absFired_.size());
    for (const TimeNs t : absFired_)
        w.put(t);
    inner_->saveState(w);
}

void
FaultedSupply::loadState(StateReader &r)
{
    nextAbs_ = r.get<std::size_t>();
    havePending_ = r.get<bool>();
    pendingDelay_ = r.get<TimeNs>();
    haveArmed_ = r.get<bool>();
    armedAt_ = r.get<TimeNs>();
    forced_ = r.get<bool>();
    injected_ = r.get<std::uint64_t>();
    fired_.resize(r.get<std::size_t>());
    for (TimeNs &t : fired_)
        t = r.get<TimeNs>();
    absFired_.resize(r.get<std::size_t>());
    for (TimeNs &t : absFired_)
        t = r.get<TimeNs>();
    inner_->loadState(r);
}

// ---- FaultInjector ---------------------------------------------------------

FaultInjector::FaultInjector(board::Board &board, FaultedSupply &supply,
                             const FaultPlan &plan, bool observeOnly)
    : board_(board), supply_(supply), plan_(&plan), observe_(observeOnly)
{
    resizeFirings();
}

void
FaultInjector::resizeFirings()
{
    cutFired_.assign(plan_->cuts.size(), AtomFiring{});
    tearFired_.assign(plan_->tears.size(), AtomFiring{});
    flipFired_.assign(plan_->flips.size(), AtomFiring{});
}

void
FaultInjector::rebind(const FaultPlan *plan, bool observeOnly)
{
    TICSIM_ASSERT(plan != nullptr, "fault: rebind to null plan");
    plan_ = plan;
    observe_ = observeOnly;
    tears_ = 0;
    flips_ = 0;
    flipsUnmatched_ = 0;
    resizeFirings();
}

InjectorState
FaultInjector::state() const
{
    InjectorState s;
    s.census = census_;
    s.started = started_;
    s.boots = boots_;
    return s;
}

void
FaultInjector::setState(const InjectorState &s)
{
    census_ = s.census;
    started_ = s.started;
    boots_ = s.boots;
}

void
FaultInjector::note(Boundary b)
{
    const std::uint64_t occ = ++census_.boundary[static_cast<int>(b)];
    if (observe_)
        return;
    for (std::size_t i = 0; i < plan_->cuts.size(); ++i) {
        const auto &c = plan_->cuts[i];
        if (!c.absolute && c.boundary == b && c.occurrence == occ &&
            supply_.armCutAfter(c.delayNs)) {
            cutFired_[i].fired = true;
            cutFired_[i].occurrence = occ;
            cutFired_[i].at = board_.now();
        }
    }
}

void
FaultInjector::powerOn()
{
    started_ = true;
    ++boots_;
    if (!observe_ && boots_ >= 2) {
        // Off window N separates powerOn N from powerOn N+1.
        for (std::size_t i = 0; i < plan_->flips.size(); ++i) {
            if (plan_->flips[i].outageIndex + 1 == boots_)
                applyFlip(plan_->flips[i], i);
        }
    }
    note(Boundary::Boot);
}

void
FaultInjector::commit()
{
    note(Boundary::CommitEnd);
}

void
FaultInjector::sideEvent(const mem::SideEvent &ev)
{
    switch (ev.kind) {
      case mem::SideEventKind::CkptCommitStart:
        note(Boundary::CommitStart);
        break;
      case mem::SideEventKind::BootRestore:
        note(Boundary::BootRestore);
        break;
      case mem::SideEventKind::PeripheralSend:
        note(Boundary::PeripheralSend);
        break;
      case mem::SideEventKind::TimeRead:
        note(Boundary::TimeRead);
        break;
      default:
        break;
    }
}

void
FaultInjector::store(mem::StoreSite site, void *dst, const void *src,
                     std::uint32_t bytes)
{
    if (!started_) {
        // Construction-time stores happen at "programming time", before
        // the first power-on; they are not part of the fault universe.
        std::memcpy(dst, src, bytes);
        return;
    }
    const int s = static_cast<int>(site);
    const std::uint64_t occ = ++census_.stores[s];
    census_.maxStoreBytes[s] =
        std::max(census_.maxStoreBytes[s], bytes);
    if (!observe_) {
        for (std::size_t i = 0; i < plan_->tears.size(); ++i) {
            const auto &t = plan_->tears[i];
            if (t.site == site && t.occurrence == occ) {
                tearFired_[i].fired = true;
                tearFired_[i].occurrence = occ;
                tearFired_[i].at = board_.now();
                mem::journalNote(dst, bytes);
                applyTornStore(t, dst, src, bytes);
                ++tears_;
                supply_.noteForcedDeath();
                // In-context this abandons execution and never returns
                // — the torn bytes are the last thing before lights
                // out. Outside a context it marks the boot dead.
                board_.forcePowerFail();
                return;
            }
        }
    }
    mem::journalNote(dst, bytes);
    std::memcpy(dst, src, bytes);
}

void
applyTornStore(const TornWrite &t, void *dst, const void *src,
               std::uint32_t bytes)
{
    auto *d = static_cast<std::uint8_t *>(dst);
    const auto *sp = static_cast<const std::uint8_t *>(src);
    const std::uint32_t keep = std::min(t.keepBytes, bytes);
    switch (t.mode) {
      case TearMode::Prefix:
        std::memcpy(d, sp, keep);
        break;
      case TearMode::GarbageTail:
        std::memcpy(d, sp, keep);
        // Deterministic garbage: FRAM rails collapsing mid-write leave
        // neither old nor new data in the tail.
        for (std::uint32_t i = keep; i < bytes; ++i)
            d[i] = static_cast<std::uint8_t>(0xA5u ^ (i * 29u));
        break;
      case TearMode::Interleaved:
        if (bytes <= 4) {
            // A single aligned word commits atomically, so word-granular
            // interleaving cannot tear it. Garble the tail instead so
            // small scalar stores still land in a genuinely torn state.
            const std::uint32_t k =
                bytes > 0 ? std::min(keep, bytes - 1) : 0;
            std::memcpy(d, sp, k);
            for (std::uint32_t i = k; i < bytes; ++i)
                d[i] = static_cast<std::uint8_t>(0xA5u ^ (i * 29u));
            break;
        }
        // Word-granular out-of-order commit: even 4-byte words carry
        // the new value, odd words keep the old.
        for (std::uint32_t w = 0; w * 4 < bytes; w += 2) {
            const std::uint32_t off = w * 4;
            std::memcpy(d + off, sp + off,
                        std::min<std::uint32_t>(4, bytes - off));
        }
        break;
    }
}

void
FaultInjector::applyFlip(const BitFlip &f, std::size_t atomIdx)
{
    auto &ram = board_.nvram();
    for (const auto &r : ram.regions()) {
        if (r.name == f.region) {
            if (f.offset >= r.size) {
                ++flipsUnmatched_;
                return;
            }
            std::uint8_t *cell = ram.hostPtr(r.base) + f.offset;
            mem::journalNote(cell, 1);
            *cell ^= f.mask;
            ++flips_;
            flipFired_[atomIdx].fired = true;
            flipFired_[atomIdx].occurrence = boots_;
            flipFired_[atomIdx].at = board_.now();
            return;
        }
    }
    ++flipsUnmatched_;
}

} // namespace ticsim::fault
