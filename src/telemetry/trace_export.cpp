#include "trace_export.hpp"

#include "support/json.hpp"
#include "telemetry/phase.hpp"

namespace ticsim::telemetry {

namespace {

constexpr int kTidExec = 1;
constexpr int kTidPower = 2;

double
toUs(TimeNs ns)
{
    return static_cast<double>(ns) / 1e3;
}

void
metaEvent(JsonWriter &w, const char *name, int pid, int tid,
          const std::string &label)
{
    w.beginObject()
        .member("name", name)
        .member("ph", "M")
        .member("pid", pid)
        .member("tid", tid)
        .key("args")
        .beginObject()
        .member("name", label)
        .endObject()
        .endObject();
}

void
instant(JsonWriter &w, const std::string &name, int pid, int tid,
        TimeNs at)
{
    w.beginObject()
        .member("name", name)
        .member("ph", "i")
        .member("s", "t")
        .member("ts", toUs(at))
        .member("pid", pid)
        .member("tid", tid)
        .endObject();
}

void
slice(JsonWriter &w, const std::string &name, int pid, int tid,
      TimeNs at, TimeNs durNs)
{
    w.beginObject()
        .member("name", name)
        .member("ph", "X")
        .member("ts", toUs(at))
        .member("dur", toUs(durNs))
        .member("pid", pid)
        .member("tid", tid)
        .endObject();
}

void
writeProcess(JsonWriter &w, const TraceProcess &proc, int pid)
{
    metaEvent(w, "process_name", pid, kTidExec, "ticsim: " + proc.name);
    metaEvent(w, "thread_name", pid, kTidExec, "execution");
    metaEvent(w, "thread_name", pid, kTidPower, "power");

    for (const Event &ev : proc.events) {
        switch (ev.kind) {
          case EventKind::PhaseSlice:
            slice(w, phaseName(static_cast<Phase>(ev.arg0)), pid,
                  kTidExec, ev.at, ev.arg1);
            break;
          case EventKind::Outage:
            slice(w, "power off", pid, kTidPower, ev.at, ev.arg1);
            break;
          case EventKind::BrownOut:
          case EventKind::InjectedFail:
          case EventKind::SupplyState:
            instant(w, eventName(ev.kind), pid, kTidPower, ev.at);
            break;
          case EventKind::RadioSend:
            instant(w, std::string(eventName(ev.kind)) + " " +
                           std::to_string(ev.arg0) + "B",
                    pid, kTidExec, ev.at);
            break;
          default:
            instant(w, eventName(ev.kind), pid, kTidExec, ev.at);
            break;
        }
    }
}

} // namespace

void
writeChromeTrace(std::ostream &os,
                 const std::vector<TraceProcess> &processes)
{
    JsonWriter w(os);
    w.beginObject();
    w.member("displayTimeUnit", "ms");
    std::uint64_t dropped = 0;
    for (const TraceProcess &p : processes)
        dropped += p.dropped;
    if (dropped > 0) {
        w.key("otherData")
            .beginObject()
            .member("dropped_events", dropped)
            .endObject();
    }
    w.key("traceEvents").beginArray();
    int pid = 1;
    for (const TraceProcess &p : processes)
        writeProcess(w, p, pid++);
    w.endArray();
    w.endObject();
    os << '\n';
}

void
writeChromeTrace(std::ostream &os, const std::vector<Event> &events,
                 const std::string &processName, std::uint64_t dropped)
{
    writeChromeTrace(os, {TraceProcess{processName, events, dropped}});
}

} // namespace ticsim::telemetry
