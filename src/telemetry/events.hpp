/**
 * @file
 * Bounded virtual-time event timeline.
 *
 * A fixed-capacity ring of typed events, each stamped with the board's
 * true virtual time at emission. The ring is preallocated once and
 * emit() is a couple of stores, so recording is safe on the charge
 * path; when the ring fills, the oldest events are overwritten and a
 * drop counter records how many were lost (the exporter reports it).
 *
 * Events are host-side observability only — emitting charges no
 * cycles, so enabling the timeline cannot change modeled results.
 */

#ifndef TICSIM_TELEMETRY_EVENTS_HPP
#define TICSIM_TELEMETRY_EVENTS_HPP

#include <cstdint>
#include <vector>

#include "support/units.hpp"

namespace ticsim::telemetry {

/** Timeline event types. */
enum class EventKind : std::uint8_t {
    Boot,             ///< power restored, runtime boot begins
    BrownOut,         ///< supply died (instant)
    InjectedFail,     ///< injected death (fault campaign / explorer),
                      ///< emitted just before the matching BrownOut
    Outage,           ///< off interval; at = death time, arg1 = off ns
    CheckpointCommit, ///< a checkpoint committed (arg0 = cause)
    Restore,          ///< a restore re-armed the application
    Rollback,         ///< boot-time rollback applied (arg0 = entries)
    Violation,        ///< consistency violation observed (arg0 = kind)
    RadioSend,        ///< radio packet sent (arg0 = bytes)
    SupplyState,      ///< supply regime change (arg0 = new state)
    PhaseSlice,       ///< coarse phase; at = start, arg0 = phase,
                      ///< arg1 = duration ns
};

/** Stable lower-case name ("boot", "checkpoint_commit", ...). */
const char *eventName(EventKind k);

/** One timeline record (fixed-size, trivially copyable). */
struct Event {
    TimeNs at = 0;
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
    EventKind kind = EventKind::Boot;
};

class EventRing
{
  public:
    explicit EventRing(std::uint32_t capacity = 1 << 16);

    /** Append an event; overwrites the oldest when full. */
    void emit(EventKind kind, TimeNs at, std::uint64_t arg0 = 0,
              std::uint64_t arg1 = 0);

    /** Events currently held, oldest first. */
    std::vector<Event> snapshot() const;

    std::uint32_t size() const { return count_; }
    std::uint32_t capacity() const
    {
        return static_cast<std::uint32_t>(buf_.size());
    }

    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }

    void clear();

    /**
     * Position marker for snapshot/rewind. rewind() truncates the
     * ring back to a mark taken earlier, making a restored run's
     * timeline identical to a from-scratch run's. Truncation is only
     * exact while no events have been overwritten since the mark;
     * rewind() reports that as its return value (and restores the
     * counters regardless, so a subsequent snapshot() is still
     * consistent with the mark's view of the ring).
     */
    struct Mark {
        std::uint32_t head = 0;
        std::uint32_t count = 0;
        std::uint64_t dropped = 0;
    };

    Mark mark() const { return Mark{head_, count_, dropped_}; }

    /** @return true iff the rewind is exact (no drops since @p m). */
    bool rewind(const Mark &m);

  private:
    std::vector<Event> buf_;
    std::uint32_t head_ = 0;  ///< index of the oldest event
    std::uint32_t count_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace ticsim::telemetry

#endif // TICSIM_TELEMETRY_EVENTS_HPP
