/**
 * @file
 * Phase-attributed cycle profiling.
 *
 * Every cycle the MCU executes is attributed to exactly one runtime
 * phase — application work, checkpointing, restore, undo logging,
 * rollback, timekeeper reads, peripheral I/O or boot — so the paper's
 * overhead breakdowns (Fig. 9/10, Table 4) can be read off any run
 * instead of being re-derived per bench.
 *
 * The attribution path is sampling-free and allocation-free: the
 * profiler is a fixed array of per-phase counters plus a small
 * fixed-depth scope stack, and attribute() is one index plus one add.
 * Runtimes declare phases with RAII PhaseScope guards around the code
 * that charges cycles; whatever phase is on top of the stack when a
 * charge drains receives the cycles. The invariant
 *
 *     sum over phases == Mcu::cycles()
 *
 * holds by construction because attribution happens inside
 * Mcu::addCycles() itself.
 *
 * Power-failure safety: a brown-out abandons the application context
 * without running destructors, so scopes opened on the app stack leak.
 * The Board calls resetScopes() on every boot, and ~PhaseScope() only
 * ever *lowers* the stack depth (never raises it), so a scope object
 * restored as part of a checkpointed stack image — whose destructor
 * runs in a later power life — is a no-op instead of corrupting the
 * stack.
 */

#ifndef TICSIM_TELEMETRY_PHASE_HPP
#define TICSIM_TELEMETRY_PHASE_HPP

#include <cstdint>

#include "support/units.hpp"

namespace ticsim::telemetry {

class EventRing;

/** The execution phases cycles are attributed to. */
enum class Phase : std::uint8_t {
    App = 0,     ///< application work (default when no scope is open)
    Checkpoint,  ///< checkpoint capture + two-phase commit
    Restore,     ///< post-reboot state restore
    UndoLog,     ///< write interception + undo-log appends
    Rollback,    ///< undo-log / version rollback on boot
    Timekeeper,  ///< persistent-clock reads
    Peripheral,  ///< sensor sampling and radio I/O
    Boot,        ///< boot-time runtime initialization
};

constexpr int kPhaseCount = 8;

/** Stable lower-case name ("checkpoint", "undo_log", ...). */
const char *phaseName(Phase p);

class PhaseProfiler
{
  public:
    /** Cycles attributed to @p p since the last reset. */
    Cycles phaseCycles(Phase p) const
    {
        return cycles_[static_cast<int>(p)];
    }

    /** Sum over all phases (== Mcu::cycles() by construction). */
    Cycles totalCycles() const;

    /** The phase currently receiving cycles. */
    Phase current() const
    {
        return depth_ > 0 ? stack_[depth_ - 1] : Phase::App;
    }

    /** Attribute @p c executed cycles to the current phase. */
    void attribute(Cycles c) { cycles_[static_cast<int>(current())] += c; }

    /** Zero all per-phase counters (scope stack untouched). */
    void resetCycles();

    /** Drop all open scopes (called by the Board on every boot: a
     *  power failure abandons the app stack without unwinding). */
    void resetScopes() { depth_ = 0; }

    /**
     * Bind the profiler to the board's virtual clock and event ring so
     * coarse scopes (checkpoint/restore/rollback/boot) are emitted as
     * timeline slices. Fine-grained scopes (undo-log, timekeeper,
     * peripheral) fire far too often to trace per-instance and are
     * reported as aggregate cycle counts only.
     */
    void bindTimeline(const TimeNs *now, EventRing *ring)
    {
        now_ = now;
        ring_ = ring;
    }

    std::uint32_t depth() const { return depth_; }

  private:
    friend class PhaseScope;

    static constexpr std::uint32_t kMaxDepth = 16;

    /** Push @p p; returns the depth before the push (scope token). */
    std::uint32_t push(Phase p);

    /** Close scopes down to @p depth; no-op when already at or below
     *  (the restored-stack-image destructor case). */
    void closeTo(std::uint32_t depth);

    Cycles cycles_[kPhaseCount] = {};
    Phase stack_[kMaxDepth] = {};
    std::uint32_t depth_ = 0;
    const TimeNs *now_ = nullptr;
    EventRing *ring_ = nullptr;
};

/**
 * RAII phase declaration. Open one around any code that charges
 * cycles belonging to a non-App phase; nesting is fine (the innermost
 * scope wins, e.g. a forced checkpoint inside the undo-log barrier is
 * attributed to Checkpoint).
 */
class PhaseScope
{
  public:
    PhaseScope(PhaseProfiler &p, Phase phase);
    ~PhaseScope();

    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

  private:
    PhaseProfiler &p_;
    Phase phase_;
    std::uint32_t openDepth_; ///< depth before this scope pushed
    TimeNs startNs_ = 0;      ///< slice start (coarse phases only)
};

} // namespace ticsim::telemetry

#endif // TICSIM_TELEMETRY_PHASE_HPP
