#include "events.hpp"

#include "perf/counters.hpp"

namespace ticsim::telemetry {

const char *
eventName(EventKind k)
{
    switch (k) {
      case EventKind::Boot:             return "boot";
      case EventKind::BrownOut:         return "brown_out";
      case EventKind::InjectedFail:     return "injected_fail";
      case EventKind::Outage:           return "outage";
      case EventKind::CheckpointCommit: return "checkpoint_commit";
      case EventKind::Restore:          return "restore";
      case EventKind::Rollback:         return "rollback";
      case EventKind::Violation:        return "violation";
      case EventKind::RadioSend:        return "radio_send";
      case EventKind::SupplyState:      return "supply_state";
      case EventKind::PhaseSlice:       return "phase";
    }
    return "?";
}

EventRing::EventRing(std::uint32_t capacity)
    : buf_(capacity > 0 ? capacity : 1)
{
}

void
EventRing::emit(EventKind kind, TimeNs at, std::uint64_t arg0,
                std::uint64_t arg1)
{
    const auto cap = static_cast<std::uint32_t>(buf_.size());
    std::uint32_t slot;
    ++perf::hot().eventPushes;
    if (count_ < cap) {
        slot = (head_ + count_) % cap;
        ++count_;
    } else {
        slot = head_;  // overwrite the oldest
        head_ = (head_ + 1) % cap;
        ++dropped_;
        ++perf::hot().eventDrops;
    }
    buf_[slot] = Event{at, arg0, arg1, kind};
}

std::vector<Event>
EventRing::snapshot() const
{
    std::vector<Event> out;
    out.reserve(count_);
    const auto cap = static_cast<std::uint32_t>(buf_.size());
    for (std::uint32_t i = 0; i < count_; ++i)
        out.push_back(buf_[(head_ + i) % cap]);
    return out;
}

void
EventRing::clear()
{
    head_ = 0;
    count_ = 0;
    dropped_ = 0;
}

bool
EventRing::rewind(const Mark &m)
{
    const bool exact = dropped_ == m.dropped;
    head_ = m.head;
    count_ = m.count;
    dropped_ = m.dropped;
    return exact;
}

} // namespace ticsim::telemetry
