/**
 * @file
 * Chrome trace_event export of the telemetry timeline.
 *
 * Serializes an EventRing snapshot into the Chrome Trace Event JSON
 * format (the JSON Array Format with a "traceEvents" wrapper), so any
 * run opens directly in Perfetto (ui.perfetto.dev) or
 * chrome://tracing as a power/execution timeline:
 *
 *  - tid 1 "execution": coarse phase slices (checkpoint / restore /
 *    rollback / boot) as complete ("X") events, plus instantaneous
 *    markers for checkpoint commits, violations and radio sends;
 *  - tid 2 "power": off intervals as "power off" slices — the gaps
 *    between them are exactly the device's powered lifetimes.
 *
 * Timestamps are virtual time (ts in microseconds, as the format
 * requires); trimming the event list never breaks rendering because
 * only self-contained "X"/"i" events are emitted (no B/E pairing).
 */

#ifndef TICSIM_TELEMETRY_TRACE_EXPORT_HPP
#define TICSIM_TELEMETRY_TRACE_EXPORT_HPP

#include <ostream>
#include <string>
#include <vector>

#include "telemetry/events.hpp"

namespace ticsim::telemetry {

/**
 * Write @p events as Chrome trace_event JSON. @p processName labels
 * the trace's process row (typically the bench + run label);
 * @p dropped is reported as trace metadata when nonzero.
 */
void writeChromeTrace(std::ostream &os, const std::vector<Event> &events,
                      const std::string &processName,
                      std::uint64_t dropped = 0);

/** One board's timeline in a multi-run trace. */
struct TraceProcess {
    std::string name;          ///< run label (becomes the process row)
    std::vector<Event> events; ///< oldest first (EventRing::snapshot)
    std::uint64_t dropped = 0; ///< ring overwrites (EventRing::dropped)
};

/**
 * Write several runs into one trace, each as its own process row so a
 * whole bench binary's runs land side by side in Perfetto.
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceProcess> &processes);

} // namespace ticsim::telemetry

#endif // TICSIM_TELEMETRY_TRACE_EXPORT_HPP
