#include "phase.hpp"

#include "support/logging.hpp"
#include "telemetry/events.hpp"

namespace ticsim::telemetry {

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::App:        return "app";
      case Phase::Checkpoint: return "checkpoint";
      case Phase::Restore:    return "restore";
      case Phase::UndoLog:    return "undo_log";
      case Phase::Rollback:   return "rollback";
      case Phase::Timekeeper: return "timekeeper";
      case Phase::Peripheral: return "peripheral";
      case Phase::Boot:       return "boot";
    }
    return "?";
}

Cycles
PhaseProfiler::totalCycles() const
{
    Cycles total = 0;
    for (const Cycles c : cycles_)
        total += c;
    return total;
}

void
PhaseProfiler::resetCycles()
{
    for (Cycles &c : cycles_)
        c = 0;
}

std::uint32_t
PhaseProfiler::push(Phase p)
{
    TICSIM_ASSERT(depth_ < kMaxDepth, "phase scope stack overflow");
    const std::uint32_t before = depth_;
    stack_[depth_++] = p;
    return before;
}

void
PhaseProfiler::closeTo(std::uint32_t depth)
{
    if (depth_ > depth)
        depth_ = depth;
}

namespace {

/** Phases rare enough to trace as individual timeline slices. */
bool
sliceWorthy(Phase p)
{
    switch (p) {
      case Phase::Checkpoint:
      case Phase::Restore:
      case Phase::Rollback:
      case Phase::Boot:
        return true;
      default:
        return false;
    }
}

} // namespace

PhaseScope::PhaseScope(PhaseProfiler &p, Phase phase)
    : p_(p), phase_(phase), openDepth_(p.push(phase))
{
    if (p_.now_ != nullptr)
        startNs_ = *p_.now_;
}

PhaseScope::~PhaseScope()
{
    // A scope restored from a checkpointed stack image destructs in a
    // later power life with the profiler stack already unwound; closeTo
    // detects that (depth <= openDepth_) and the slice is suppressed.
    if (p_.depth_ <= openDepth_)
        return;
    p_.closeTo(openDepth_);
    if (p_.ring_ != nullptr && p_.now_ != nullptr && sliceWorthy(phase_)) {
        const TimeNs end = *p_.now_;
        p_.ring_->emit(EventKind::PhaseSlice, startNs_,
                       static_cast<std::uint64_t>(phase_),
                       end >= startNs_ ? end - startNs_ : 0);
    }
}

} // namespace ticsim::telemetry
