/**
 * @file
 * Content-addressed result cache for sweep cells.
 *
 * A cell's outcome is fully determined by its canonical configuration
 * string (the simulator is deterministic per seed and every run gets a
 * fresh Board), so results are cached under
 * hash(canonical-config + code-version salt). The salt is bumped
 * whenever a change to the simulator can alter results, invalidating
 * the whole cache rather than serving stale numbers. Every entry
 * echoes the exact configuration and salt it was written for, and a
 * lookup whose echo does not match is treated as a miss — a hash
 * collision or hand-edited file can cost a re-run, never a wrong
 * result.
 *
 * All numeric state is serialized with %.17g (see
 * Distribution::encode), so a cache hit reproduces the original run's
 * doubles bit-exactly and cached and fresh sweeps emit byte-identical
 * JSON reports.
 */

#ifndef TICSIM_SWEEP_CACHE_HPP
#define TICSIM_SWEEP_CACHE_HPP

#include <cstdint>
#include <string>

#include "support/stats.hpp"
#include "sweep/grid.hpp"

namespace ticsim::sweep {

/**
 * Bump on any simulator change that can alter cell results (cost
 * model, runtime logic, supply models, app workloads...). The sweep
 * driver folds this into every cache key.
 */
inline constexpr const char *kCacheSalt = "ticsim-sweep-v1";

/** One cell's measured outcome. */
struct CellResult {
    bool completed = false;
    bool starved = false;
    bool verified = false; ///< the app's own output verification
    std::uint64_t reboots = 0;
    std::uint64_t cycles = 0;
    std::uint64_t elapsedNs = 0; ///< total virtual time (on + off)
    std::uint64_t onTimeNs = 0;  ///< powered virtual time
    /** Powered-ms samples (one per run) for cross-seed aggregation. */
    Distribution simMs;

    /** Single-line text serialization (cache payload). */
    std::string encode() const;
    /** @return false on malformed text (result is reset). */
    bool decode(const std::string &text);

    double simMsValue() const
    {
        return static_cast<double>(onTimeNs) / 1e6;
    }
};

/**
 * Directory-backed cache, one file per cell keyed by
 * fnv1a64(canonical + salt). Concurrent writers — threads or whole
 * processes (fleet workers) — are safe: each writer stages to its own
 * O_EXCL-created temp name (pid + counter) and publishes with an
 * atomic rename, and a racing winner is tolerated because the
 * simulator's determinism makes every writer's content identical.
 */
class ResultCache
{
  public:
    /** @param dir cache directory; empty disables the cache. */
    explicit ResultCache(std::string dir,
                         std::string salt = kCacheSalt);

    bool enabled() const { return !dir_.empty(); }

    /** @return true and fill @p out on a verified hit. */
    bool lookup(const Cell &cell, CellResult &out) const;

    /** Persist @p r for @p cell (no-op when disabled). */
    void store(const Cell &cell, const CellResult &r) const;

    /** The key file path for @p cell (for tests and diagnostics). */
    std::string entryPath(const Cell &cell) const;

  private:
    std::string dir_;
    std::string salt_;
};

} // namespace ticsim::sweep

#endif // TICSIM_SWEEP_CACHE_HPP
