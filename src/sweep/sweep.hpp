/**
 * @file
 * The ticssweep engine: runs every cell of a GridSpec on a
 * work-stealing JobPool, consults the content-addressed ResultCache,
 * and aggregates per-cell results across seeds into merged
 * Distributions.
 *
 * Determinism contract: runSweep() produces identical SweepResults
 * (bit-for-bit, including every double) for any job count and any
 * cache state. Each cell runs on a fresh Board whose behavior depends
 * only on the cell configuration; outcomes are stored by cell index
 * (never completion order) and aggregated in the grid's canonical
 * JobId order; cached results round-trip through %.17g text. The only
 * fields that vary between invocations are the wall-clock time and
 * the cache hit/miss split, which live beside — not inside — the cell
 * results.
 */

#ifndef TICSIM_SWEEP_SWEEP_HPP
#define TICSIM_SWEEP_SWEEP_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "board/board.hpp"
#include "harness/report.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "sweep/cache.hpp"
#include "sweep/grid.hpp"

namespace ticsim::sweep {

struct SweepConfig {
    GridSpec grid;
    /** Worker threads; 0 = all hardware threads. */
    unsigned jobs = 0;
    bool useCache = true;
    std::string cacheDir = ".ticssweep-cache";
    /** Virtual-time budget for protected runs (they complete). */
    TimeNs budget = 600 * kNsPerSec;
    /** Time-box for plain-C under an interrupting supply (it restarts
     *  from scratch every reboot and may never finish). */
    TimeNs unprotectedBudget = 3 * kNsPerSec;
};

/** One enumerated cell's outcome. */
struct SweepCellOutcome {
    Cell cell;
    CellResult result;
    bool fromCache = false;
};

/** Cross-seed aggregate over one configuration group. */
struct SweepAggregate {
    std::string groupKey;
    Cell representative; ///< any cell of the group (seed meaningless)
    std::uint64_t cellsMerged = 0;
    std::uint64_t completedCells = 0;
    Distribution simMs; ///< merged per-cell powered-ms distributions
};

struct SweepResult {
    std::vector<SweepCellOutcome> cells; ///< JobId order
    std::vector<SweepAggregate> aggregates; ///< groupKey order
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    unsigned jobs = 1;
    double wallMs = 0.0; ///< host wall-clock of the run phase
};

/** Execute one cell (fresh Board, no cache involvement). */
CellResult runCell(const Cell &cell, const SweepConfig &cfg);

/**
 * Merge per-cell outcomes into cross-seed aggregates. @p cells must
 * be in canonical JobId order; groups come out in groupKey order.
 * Shared by the in-process engine and the fleet coordinator — both
 * aggregate the same outcome sequence with the same code, which is
 * half of the fleet's byte-identity argument.
 */
std::vector<SweepAggregate>
aggregateOutcomes(const std::vector<SweepCellOutcome> &cells);

/** Run the whole grid; see the determinism contract above. */
SweepResult runSweep(const SweepConfig &cfg);

/**
 * Translate a SweepResult into the report's plain-data grid section.
 * @p stable zeroes every field that legitimately varies between
 * otherwise identical runs (jobs, wall clock, cache split), which is
 * what lets CI byte-compare reports across job and worker counts.
 */
harness::GridSection toGridSection(const SweepResult &r, bool stable);

/** Per-cell results in the repo's standard table format. */
Table sweepTable(const SweepResult &r);

/** Cross-seed aggregate table. */
Table aggregateTable(const SweepResult &r);

} // namespace ticsim::sweep

#endif // TICSIM_SWEEP_SWEEP_HPP
