#include "job_pool.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "perf/counters.hpp"

namespace ticsim::sweep {

JobPool::JobPool(unsigned jobs)
    : jobs_(jobs == 0 ? defaultJobs() : jobs)
{
}

unsigned
JobPool::defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1u : hw;
}

namespace {

/** One worker's share of the index space. */
struct WorkerQueue {
    std::mutex m;
    std::deque<std::size_t> dq;
};

} // namespace

void
JobPool::run(std::size_t count,
             const std::function<void(std::size_t)> &body) const
{
    if (count == 0)
        return;

    const std::size_t nWorkers =
        std::min<std::size_t>(jobs_, count);
    if (nWorkers <= 1) {
        for (std::size_t i = 0; i < count; ++i) {
            ++perf::hot().jobsExecuted;
            body(i);
        }
        return;
    }

    std::vector<WorkerQueue> queues(nWorkers);
    for (std::size_t i = 0; i < count; ++i)
        queues[i % nWorkers].dq.push_back(i);

    std::atomic<bool> aborting{false};
    std::exception_ptr firstError;
    std::mutex errorMutex;

    // Pop from the front of our own deque; steal from the back of a
    // neighbor's so the victim's cache-warm front entries stay put.
    const auto nextIndex = [&](std::size_t self,
                               std::size_t &out) -> bool {
        {
            WorkerQueue &q = queues[self];
            std::lock_guard<std::mutex> lock(q.m);
            if (!q.dq.empty()) {
                out = q.dq.front();
                q.dq.pop_front();
                return true;
            }
        }
        for (std::size_t off = 1; off < nWorkers; ++off) {
            WorkerQueue &q = queues[(self + off) % nWorkers];
            std::lock_guard<std::mutex> lock(q.m);
            if (!q.dq.empty()) {
                out = q.dq.back();
                q.dq.pop_back();
                ++perf::hot().jobSteals;
                return true;
            }
        }
        return false;
    };

    {
        std::vector<std::jthread> workers;
        workers.reserve(nWorkers);
        for (std::size_t w = 0; w < nWorkers; ++w) {
            workers.emplace_back([&, w] {
                std::size_t idx = 0;
                while (!aborting.load(std::memory_order_relaxed) &&
                       nextIndex(w, idx)) {
                    try {
                        ++perf::hot().jobsExecuted;
                        body(idx);
                    } catch (...) {
                        std::lock_guard<std::mutex> lock(errorMutex);
                        if (!firstError)
                            firstError = std::current_exception();
                        aborting.store(true,
                                       std::memory_order_relaxed);
                    }
                }
            });
        }
    } // jthread joins here

    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace ticsim::sweep
