#include "cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/logging.hpp"

namespace ticsim::sweep {

std::string
CellResult::encode() const
{
    std::ostringstream os;
    os << (completed ? 1 : 0) << ' ' << (starved ? 1 : 0) << ' '
       << (verified ? 1 : 0) << ' ' << reboots << ' ' << cycles << ' '
       << elapsedNs << ' ' << onTimeNs;
    return os.str();
}

bool
CellResult::decode(const std::string &text)
{
    *this = CellResult{};
    std::istringstream is(text);
    int c = 0;
    int s = 0;
    int v = 0;
    if (!(is >> c >> s >> v >> reboots >> cycles >> elapsedNs >>
          onTimeNs)) {
        *this = CellResult{};
        return false;
    }
    completed = c != 0;
    starved = s != 0;
    verified = v != 0;
    return true;
}

ResultCache::ResultCache(std::string dir, std::string salt)
    : dir_(std::move(dir)), salt_(std::move(salt))
{
}

std::string
ResultCache::entryPath(const Cell &cell) const
{
    const std::uint64_t key =
        fnv1a64(cell.canonical() + "|salt=" + salt_);
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.cell",
                  static_cast<unsigned long long>(key));
    return dir_ + "/" + name;
}

bool
ResultCache::lookup(const Cell &cell, CellResult &out) const
{
    if (!enabled())
        return false;
    std::ifstream in(entryPath(cell));
    if (!in)
        return false;
    std::string header;
    std::string config;
    std::string salt;
    std::string result;
    std::string dist;
    if (!std::getline(in, header) || !std::getline(in, config) ||
        !std::getline(in, salt) || !std::getline(in, result) ||
        !std::getline(in, dist))
        return false;
    // Verify the configuration echo: a key collision or stale salt is
    // a miss, never a wrong result.
    if (header != "ticssweep-cache 1" ||
        config != "config " + cell.canonical() ||
        salt != "salt " + salt_)
        return false;
    CellResult r;
    if (result.rfind("result ", 0) != 0 ||
        dist.rfind("dist ", 0) != 0 ||
        !r.decode(result.substr(7)) || !r.simMs.decode(dist.substr(5)))
        return false;
    out = r;
    return true;
}

void
ResultCache::store(const Cell &cell, const CellResult &r) const
{
    if (!enabled())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        warn("ticssweep cache: cannot create '%s': %s", dir_.c_str(),
             ec.message().c_str());
        return;
    }
    const std::string path = entryPath(cell);
    const std::string tmp = path + ".tmp";
    {
        std::ofstream outF(tmp, std::ios::trunc);
        if (!outF) {
            warn("ticssweep cache: cannot write '%s'", tmp.c_str());
            return;
        }
        outF << "ticssweep-cache 1\n"
             << "config " << cell.canonical() << '\n'
             << "salt " << salt_ << '\n'
             << "result " << r.encode() << '\n'
             << "dist " << r.simMs.encode() << '\n';
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        warn("ticssweep cache: cannot publish '%s': %s", path.c_str(),
             ec.message().c_str());
        std::filesystem::remove(tmp, ec);
    }
}

} // namespace ticsim::sweep
