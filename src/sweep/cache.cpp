#include "cache.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "support/logging.hpp"

namespace ticsim::sweep {

std::string
CellResult::encode() const
{
    std::ostringstream os;
    os << (completed ? 1 : 0) << ' ' << (starved ? 1 : 0) << ' '
       << (verified ? 1 : 0) << ' ' << reboots << ' ' << cycles << ' '
       << elapsedNs << ' ' << onTimeNs;
    return os.str();
}

bool
CellResult::decode(const std::string &text)
{
    *this = CellResult{};
    std::istringstream is(text);
    int c = 0;
    int s = 0;
    int v = 0;
    if (!(is >> c >> s >> v >> reboots >> cycles >> elapsedNs >>
          onTimeNs)) {
        *this = CellResult{};
        return false;
    }
    completed = c != 0;
    starved = s != 0;
    verified = v != 0;
    return true;
}

ResultCache::ResultCache(std::string dir, std::string salt)
    : dir_(std::move(dir)), salt_(std::move(salt))
{
}

std::string
ResultCache::entryPath(const Cell &cell) const
{
    const std::uint64_t key =
        fnv1a64(cell.canonical() + "|salt=" + salt_);
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.cell",
                  static_cast<unsigned long long>(key));
    return dir_ + "/" + name;
}

bool
ResultCache::lookup(const Cell &cell, CellResult &out) const
{
    if (!enabled())
        return false;
    std::ifstream in(entryPath(cell));
    if (!in)
        return false;
    std::string header;
    std::string config;
    std::string salt;
    std::string result;
    std::string dist;
    if (!std::getline(in, header) || !std::getline(in, config) ||
        !std::getline(in, salt) || !std::getline(in, result) ||
        !std::getline(in, dist))
        return false;
    // Verify the configuration echo: a key collision or stale salt is
    // a miss, never a wrong result.
    if (header != "ticssweep-cache 1" ||
        config != "config " + cell.canonical() ||
        salt != "salt " + salt_)
        return false;
    CellResult r;
    if (result.rfind("result ", 0) != 0 ||
        dist.rfind("dist ", 0) != 0 ||
        !r.decode(result.substr(7)) || !r.simMs.decode(dist.substr(5)))
        return false;
    out = r;
    return true;
}

void
ResultCache::store(const Cell &cell, const CellResult &r) const
{
    if (!enabled())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        warn("ticssweep cache: cannot create '%s': %s", dir_.c_str(),
             ec.message().c_str());
        return;
    }
    const std::string path = entryPath(cell);

    // Concurrent *processes* (fleet workers) publish the same entry:
    // each stages to its own O_EXCL-created temp name (pid + an
    // in-process counter), so no two writers ever share a staging
    // file. The final rename() is atomic; a racing winner is harmless
    // because determinism makes every writer's content identical.
    static std::atomic<std::uint64_t> tmpCounter{0};
    std::string tmp;
    int fd = -1;
    for (int attempt = 0; attempt < 8 && fd < 0; ++attempt) {
        tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
              std::to_string(
                  tmpCounter.fetch_add(1, std::memory_order_relaxed));
        fd = ::open(tmp.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    }
    if (fd < 0) {
        warn("ticssweep cache: cannot stage '%s'", tmp.c_str());
        return;
    }
    std::ostringstream body;
    body << "ticssweep-cache 1\n"
         << "config " << cell.canonical() << '\n'
         << "salt " << salt_ << '\n'
         << "result " << r.encode() << '\n'
         << "dist " << r.simMs.encode() << '\n';
    const std::string text = body.str();
    std::size_t off = 0;
    while (off < text.size()) {
        const ssize_t n =
            ::write(fd, text.data() + off, text.size() - off);
        if (n <= 0) {
            warn("ticssweep cache: cannot write '%s'", tmp.c_str());
            ::close(fd);
            std::filesystem::remove(tmp, ec);
            return;
        }
        off += static_cast<std::size_t>(n);
    }
    ::close(fd);
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        warn("ticssweep cache: cannot publish '%s': %s", path.c_str(),
             ec.message().c_str());
        std::filesystem::remove(tmp, ec);
    }
}

} // namespace ticsim::sweep
