/**
 * @file
 * Grid specification for ticssweep: the cross-product of experiment
 * axes (application, runtime, supply/reset pattern, capacitor,
 * TICS segment size, seed), with a stable content-hashed JobId per
 * cell.
 *
 * Determinism contract: a cell's JobId is the FNV-1a 64 hash of its
 * canonical configuration string, so the same configuration always
 * maps to the same id across processes, job counts and axis orderings.
 * cells() normalizes away axis values that cannot affect the
 * simulation (segment size on non-TICS runtimes, capacitance on
 * non-harvested supplies), deduplicates the normalized cells and
 * returns them sorted by JobId — the one canonical enumeration order
 * every consumer (scheduler, aggregator, report writer) shares.
 */

#ifndef TICSIM_SWEEP_GRID_HPP
#define TICSIM_SWEEP_GRID_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ticsim::sweep {

/** FNV-1a 64-bit content hash (stable across platforms). */
std::uint64_t fnv1a64(std::string_view s);

/** Supply-axis kinds (mirrors harness::PowerSetup). */
enum class SupplyKind {
    Continuous, ///< bench supply, never browns out
    Pattern,    ///< pre-programmed reset pattern
    Rf,         ///< RF harvester + capacitor
    Stochastic, ///< bursty ambient source + capacitor
};

/** One value of the supply/reset-pattern axis. */
struct SupplyAxis {
    SupplyKind kind = SupplyKind::Pattern;
    double periodMs = 30.0;   ///< Pattern only
    double onFraction = 0.6;  ///< Pattern only

    /** Canonical axis token, e.g. "pattern:30:0.6" or "rf". */
    std::string token() const;

    bool harvested() const
    {
        return kind == SupplyKind::Rf || kind == SupplyKind::Stochastic;
    }
};

/**
 * Parse a supply token: "continuous", "rf", "stochastic" or
 * "pattern:<periodMs>:<onFraction>". @return false on a malformed
 * token.
 */
bool parseSupplyToken(const std::string &tok, SupplyAxis &out);

/** Canonical app name for a (case-insensitive) token, or nullptr. */
const char *canonicalApp(const std::string &token);

/** Canonical runtime name for a token, or nullptr. */
const char *canonicalRuntime(const std::string &token);

/**
 * Validate an environment-trace axis token: "none" (no trace) or a
 * [a-z0-9_-] trace name resolved against docs/traces at run time.
 * @return false on a malformed token; @p out is "" for "none".
 */
bool parseEnvToken(const std::string &tok, std::string &out);

/** One grid point. */
struct Cell {
    std::string app;          ///< "AR" | "BC" | "CF"
    std::string runtime;      ///< "plain-C" | "TICS" | "MementOS-like"
                              ///< | "Chinchilla-like" | "Alpaca-like"
    SupplyAxis supply;
    double capUf = 0.0;       ///< 0 = supply default (harvested only)
    std::uint32_t segmentBytes = 0; ///< 0 = default (TICS only)
    /** Environment-trace name ("" = none; replaces the supply axis). */
    std::string env;
    std::uint64_t seed = 11;

    /**
     * Canonical configuration string. Doubles are rendered with %.17g
     * so distinct values never collide and re-parsed specs hash
     * identically.
     */
    std::string canonical() const;

    /** canonical() minus the seed axis: the aggregation group key. */
    std::string groupKey() const;

    std::uint64_t jobId() const { return fnv1a64(canonical()); }

    /** 16-digit hex JobId, the cell's display name. */
    std::string jobIdHex() const;

    /** Short human-readable label for tables and logs. */
    std::string label() const;
};

/** The sweep axes; cells() takes their cross-product. */
struct GridSpec {
    std::vector<std::string> apps{"AR", "BC", "CF"};
    std::vector<std::string> runtimes{"TICS", "plain-C"};
    std::vector<SupplyAxis> supplies{SupplyAxis{}};
    std::vector<double> capsUf{0.0};
    std::vector<std::uint32_t> segments{256};
    /** Environment traces; "" = the plain supply axis (default). */
    std::vector<std::string> envs{""};
    std::vector<std::uint64_t> seeds{11};

    /**
     * Enumerate the normalized, deduplicated cells in JobId order.
     * Normalization zeroes segmentBytes unless the runtime is TICS
     * and capUf unless the supply is harvested, so redundant
     * cross-product points collapse into one cell (and one cache
     * entry) instead of re-running identical simulations.
     */
    std::vector<Cell> cells() const;
};

/**
 * Parse a grid-spec file: one "key = v1, v2, ..." assignment per
 * line, '#' comments, keys apps/runtimes/supplies/caps_uf/segments/
 * seeds (unknown keys are errors, not typo traps). Assigned keys
 * replace the default axis entirely. @return false with a message in
 * @p err on any malformed line.
 */
bool parseGridFile(const std::string &path, GridSpec &spec,
                   std::string &err);

/** Parse one comma-separated axis assignment (CLI flags reuse the
 *  spec-file grammar). */
bool parseAxis(GridSpec &spec, const std::string &key,
               const std::string &values, std::string &err);

/**
 * parseGridFile over in-memory text (@p origin labels error
 * messages). The fleet protocol ships a whole GridSpec through this:
 * the coordinator formats, the worker re-parses, and both enumerate
 * the identical canonical cell order.
 */
bool parseGridText(const std::string &text, const std::string &origin,
                   GridSpec &spec, std::string &err);

/**
 * Render @p spec in the spec-file grammar so parseGridText() round-
 * trips it exactly: doubles use %.17g, and the envs line says "none"
 * for the empty (no-trace) environment.
 */
std::string formatSpec(const GridSpec &spec);

} // namespace ticsim::sweep

#endif // TICSIM_SWEEP_GRID_HPP
