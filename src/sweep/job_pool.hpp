/**
 * @file
 * Work-stealing job pool for the experiment-orchestration subsystem.
 *
 * Sweep cells, fault-campaign schedules and cross-validation probes
 * are embarrassingly parallel: every job builds a fresh Board on its
 * own thread, and all formerly process-global simulator hooks (trace
 * sink, store gate, memory hooks, execution context, log clock) are
 * thread_local, so concurrent boards cannot observe each other. The
 * pool's only contract is that every index in [0, count) is executed
 * exactly once; callers that need deterministic output assemble
 * results by index after run() returns, never in completion order.
 */

#ifndef TICSIM_SWEEP_JOB_POOL_HPP
#define TICSIM_SWEEP_JOB_POOL_HPP

#include <cstddef>
#include <functional>

namespace ticsim::sweep {

class JobPool
{
  public:
    /** @param jobs worker count; 0 means defaultJobs(). */
    explicit JobPool(unsigned jobs = 0);

    unsigned jobs() const { return jobs_; }

    /** Host parallelism (hardware_concurrency, at least 1). */
    static unsigned defaultJobs();

    /**
     * Execute body(0) .. body(count-1), each exactly once. With one
     * worker the bodies run inline on the calling thread in index
     * order — the exact serial path, so single-job runs keep the
     * pre-pool behavior (including BenchSession run recording, which
     * only accepts the session owner's thread). With more workers,
     * indices are dealt round-robin into per-worker deques; a worker
     * drains its own deque from the front and steals from the back of
     * its neighbors', so an unlucky worker stuck on one long
     * simulation never serializes the rest of the grid.
     *
     * The first exception thrown by any body aborts the remaining
     * jobs (already-started ones finish) and is rethrown here.
     */
    void run(std::size_t count,
             const std::function<void(std::size_t)> &body) const;

  private:
    unsigned jobs_;
};

} // namespace ticsim::sweep

#endif // TICSIM_SWEEP_JOB_POOL_HPP
