#include "grid.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_set>

namespace ticsim::sweep {

std::uint64_t
fnv1a64(std::string_view s)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ull;
    }
    return h;
}

namespace {

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

/** Exact-round-trip double rendering for canonical keys. */
std::string
fmtExact(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Friendly double rendering for display tokens. */
std::string
fmtShort(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
splitList(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream is(s);
    while (std::getline(is, item, sep)) {
        item = trim(item);
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

bool
parseDouble(const std::string &s, double &out)
{
    try {
        std::size_t used = 0;
        out = std::stod(s, &used);
        return used == s.size();
    } catch (...) {
        return false;
    }
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    try {
        std::size_t used = 0;
        out = std::stoull(s, &used);
        return used == s.size();
    } catch (...) {
        return false;
    }
}

} // namespace

std::string
SupplyAxis::token() const
{
    switch (kind) {
      case SupplyKind::Continuous:
        return "continuous";
      case SupplyKind::Pattern:
        return "pattern:" + fmtShort(periodMs) + ":" +
               fmtShort(onFraction);
      case SupplyKind::Rf:
        return "rf";
      case SupplyKind::Stochastic:
        return "stochastic";
    }
    return "?";
}

bool
parseSupplyToken(const std::string &tok, SupplyAxis &out)
{
    const std::string t = lower(trim(tok));
    if (t == "continuous") {
        out = SupplyAxis{SupplyKind::Continuous, 0.0, 1.0};
        return true;
    }
    if (t == "rf") {
        out = SupplyAxis{SupplyKind::Rf, 0.0, 0.0};
        return true;
    }
    if (t == "stochastic") {
        out = SupplyAxis{SupplyKind::Stochastic, 0.0, 0.0};
        return true;
    }
    if (t.rfind("pattern:", 0) == 0) {
        const auto parts = splitList(t.substr(8), ':');
        if (parts.size() != 2)
            return false;
        SupplyAxis a;
        a.kind = SupplyKind::Pattern;
        if (!parseDouble(parts[0], a.periodMs) ||
            !parseDouble(parts[1], a.onFraction))
            return false;
        if (a.periodMs <= 0.0 || a.onFraction <= 0.0 ||
            a.onFraction > 1.0)
            return false;
        out = a;
        return true;
    }
    return false;
}

bool
parseEnvToken(const std::string &tok, std::string &out)
{
    const std::string t = lower(trim(tok));
    if (t.empty())
        return false;
    if (t == "none") {
        out.clear();
        return true;
    }
    for (const char c : t) {
        if (!std::isalnum(static_cast<unsigned char>(c)) &&
            c != '_' && c != '-')
            return false;
    }
    out = t;
    return true;
}

const char *
canonicalApp(const std::string &token)
{
    const std::string t = lower(trim(token));
    if (t == "ar")
        return "AR";
    if (t == "bc" || t == "bitcount")
        return "BC";
    if (t == "cf" || t == "cuckoo")
        return "CF";
    return nullptr;
}

const char *
canonicalRuntime(const std::string &token)
{
    const std::string t = lower(trim(token));
    if (t == "plain-c" || t == "plainc" || t == "plain")
        return "plain-C";
    if (t == "tics")
        return "TICS";
    if (t == "mementos-like" || t == "mementos")
        return "MementOS-like";
    if (t == "chinchilla-like" || t == "chinchilla")
        return "Chinchilla-like";
    if (t == "alpaca-like" || t == "alpaca" || t == "task")
        return "Alpaca-like";
    return nullptr;
}

std::string
Cell::canonical() const
{
    std::string s;
    s += "app=";
    s += app;
    s += "|rt=";
    s += runtime;
    s += "|supply=";
    switch (supply.kind) {
      case SupplyKind::Continuous:
        s += "continuous";
        break;
      case SupplyKind::Pattern:
        s += "pattern:" + fmtExact(supply.periodMs) + ":" +
             fmtExact(supply.onFraction);
        break;
      case SupplyKind::Rf:
        s += "rf";
        break;
      case SupplyKind::Stochastic:
        s += "stochastic";
        break;
    }
    s += "|cap_uf=";
    s += fmtExact(capUf);
    s += "|seg=";
    s += std::to_string(segmentBytes);
    // The env axis is appended only when set, so every pre-existing
    // cell keeps its canonical string (and JobId, and cache entry)
    // byte-for-byte.
    if (!env.empty())
        s += "|env=" + env;
    return s + "|seed=" + std::to_string(seed);
}

std::string
Cell::groupKey() const
{
    // canonical() without the trailing seed axis: cells differing
    // only by seed aggregate into one distribution.
    std::string s = canonical();
    s.erase(s.rfind("|seed="));
    return s;
}

std::string
Cell::jobIdHex() const
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(jobId()));
    return buf;
}

std::string
Cell::label() const
{
    std::string s = app + "/" + runtime + "/" + supply.token();
    if (capUf > 0.0)
        s += "/cap=" + fmtShort(capUf) + "uF";
    if (segmentBytes > 0)
        s += "/seg=" + std::to_string(segmentBytes);
    if (!env.empty())
        s += "/env=" + env;
    s += "/seed=" + std::to_string(seed);
    return s;
}

std::vector<Cell>
GridSpec::cells() const
{
    std::vector<Cell> out;
    std::unordered_set<std::uint64_t> seen;
    for (const auto &app : apps) {
        for (const auto &rt : runtimes) {
            for (const auto &supply : supplies) {
                for (const double cap : capsUf) {
                    for (const std::uint32_t seg : segments) {
                      for (const auto &env : envs) {
                        for (const std::uint64_t seed : seeds) {
                            Cell c;
                            c.app = app;
                            c.runtime = rt;
                            c.supply = supply;
                            c.env = env;
                            c.seed = seed;
                            // Normalize axes that cannot affect this
                            // cell, collapsing redundant grid points.
                            c.segmentBytes =
                                (rt == "TICS") ? seg : 0;
                            if (env.empty()) {
                                c.capUf =
                                    supply.harvested() ? cap : 0.0;
                            } else {
                                // A trace replaces the supply axis
                                // entirely (and is always harvested,
                                // so the capacitor axis applies).
                                c.supply = SupplyAxis{
                                    SupplyKind::Continuous, 0.0, 1.0};
                                c.capUf = cap;
                            }
                            if (seen.insert(c.jobId()).second)
                                out.push_back(std::move(c));
                        }
                      }
                    }
                }
            }
        }
    }
    std::sort(out.begin(), out.end(),
              [](const Cell &a, const Cell &b) {
                  const std::uint64_t ia = a.jobId();
                  const std::uint64_t ib = b.jobId();
                  if (ia != ib)
                      return ia < ib;
                  return a.seed < b.seed;
              });
    return out;
}

bool
parseAxis(GridSpec &spec, const std::string &key,
          const std::string &values, std::string &err)
{
    const std::string k = lower(trim(key));
    const auto items = splitList(values, ',');
    if (items.empty()) {
        err = "axis '" + key + "' has no values";
        return false;
    }
    if (k == "apps") {
        spec.apps.clear();
        for (const auto &it : items) {
            const char *canon = canonicalApp(it);
            if (!canon) {
                err = "unknown app '" + it + "' (AR, BC, CF)";
                return false;
            }
            spec.apps.push_back(canon);
        }
        return true;
    }
    if (k == "runtimes") {
        spec.runtimes.clear();
        for (const auto &it : items) {
            const char *canon = canonicalRuntime(it);
            if (!canon) {
                err = "unknown runtime '" + it +
                      "' (plain-C, TICS, MementOS-like, "
                      "Chinchilla-like, Alpaca-like)";
                return false;
            }
            spec.runtimes.push_back(canon);
        }
        return true;
    }
    if (k == "supplies" || k == "supply") {
        spec.supplies.clear();
        for (const auto &it : items) {
            SupplyAxis a;
            if (!parseSupplyToken(it, a)) {
                err = "bad supply token '" + it +
                      "' (continuous, pattern:<ms>:<frac>, rf, "
                      "stochastic)";
                return false;
            }
            spec.supplies.push_back(a);
        }
        return true;
    }
    if (k == "caps_uf" || k == "caps") {
        spec.capsUf.clear();
        for (const auto &it : items) {
            double v = 0.0;
            if (!parseDouble(it, v) || v < 0.0) {
                err = "bad capacitance '" + it + "'";
                return false;
            }
            spec.capsUf.push_back(v);
        }
        return true;
    }
    if (k == "segments") {
        spec.segments.clear();
        for (const auto &it : items) {
            std::uint64_t v = 0;
            if (!parseU64(it, v) || v == 0 || v > (1u << 20)) {
                err = "bad segment size '" + it + "'";
                return false;
            }
            spec.segments.push_back(
                static_cast<std::uint32_t>(v));
        }
        return true;
    }
    if (k == "envs" || k == "env") {
        spec.envs.clear();
        for (const auto &it : items) {
            std::string env;
            if (!parseEnvToken(it, env)) {
                err = "bad env token '" + it +
                      "' (none, or a docs/traces name like "
                      "solar_diurnal)";
                return false;
            }
            spec.envs.push_back(env);
        }
        return true;
    }
    if (k == "seeds") {
        spec.seeds.clear();
        for (const auto &it : items) {
            std::uint64_t v = 0;
            if (!parseU64(it, v)) {
                err = "bad seed '" + it + "'";
                return false;
            }
            spec.seeds.push_back(v);
        }
        return true;
    }
    err = "unknown axis '" + key +
          "' (apps, runtimes, supplies, caps_uf, segments, envs, "
          "seeds)";
    return false;
}

bool
parseGridText(const std::string &text, const std::string &origin,
              GridSpec &spec, std::string &err)
{
    std::istringstream in(text);
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            err = origin + ":" + std::to_string(lineNo) +
                  ": expected 'axis = v1, v2, ...'";
            return false;
        }
        std::string axisErr;
        if (!parseAxis(spec, line.substr(0, eq), line.substr(eq + 1),
                       axisErr)) {
            err = origin + ":" + std::to_string(lineNo) + ": " +
                  axisErr;
            return false;
        }
    }
    return true;
}

bool
parseGridFile(const std::string &path, GridSpec &spec,
              std::string &err)
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot open grid spec '" + path + "'";
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parseGridText(text.str(), path, spec, err);
}

std::string
formatSpec(const GridSpec &spec)
{
    const auto join = [](const auto &items, auto &&render) {
        std::string s;
        for (std::size_t i = 0; i < items.size(); ++i) {
            if (i)
                s += ", ";
            s += render(items[i]);
        }
        return s;
    };
    std::string out;
    out += "apps = " +
           join(spec.apps, [](const std::string &a) { return a; }) +
           "\n";
    out += "runtimes = " +
           join(spec.runtimes,
                [](const std::string &r) { return r; }) +
           "\n";
    // Pattern tokens carry doubles: render them with %.17g so the
    // re-parsed spec hashes to the same JobIds as the original.
    out += "supplies = " +
           join(spec.supplies,
                [](const SupplyAxis &a) -> std::string {
                    if (a.kind == SupplyKind::Pattern)
                        return "pattern:" + fmtExact(a.periodMs) +
                               ":" + fmtExact(a.onFraction);
                    return a.token();
                }) +
           "\n";
    out += "caps_uf = " +
           join(spec.capsUf,
                [](double v) { return fmtExact(v); }) +
           "\n";
    out += "segments = " +
           join(spec.segments,
                [](std::uint32_t v) { return std::to_string(v); }) +
           "\n";
    out += "envs = " +
           join(spec.envs,
                [](const std::string &e) -> std::string {
                    return e.empty() ? "none" : e;
                }) +
           "\n";
    out += "seeds = " +
           join(spec.seeds,
                [](std::uint64_t v) { return std::to_string(v); }) +
           "\n";
    return out;
}

} // namespace ticsim::sweep
