#include "sweep.hpp"

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <utility>

#include "apps/ar/ar_chinchilla.hpp"
#include "apps/ar/ar_legacy.hpp"
#include "apps/ar/ar_task.hpp"
#include "apps/bc/bc_chinchilla.hpp"
#include "apps/bc/bc_legacy.hpp"
#include "apps/bc/bc_task.hpp"
#include "apps/cuckoo/cuckoo_chinchilla.hpp"
#include "apps/cuckoo/cuckoo_legacy.hpp"
#include "apps/cuckoo/cuckoo_task.hpp"
#include "harness/experiment.hpp"
#include "perf/host_profiler.hpp"
#include "runtimes/chinchilla.hpp"
#include "runtimes/mementos.hpp"
#include "runtimes/plainc.hpp"
#include "runtimes/task_core.hpp"
#include "support/logging.hpp"
#include "sweep/job_pool.hpp"
#include "tics/runtime.hpp"

namespace ticsim::sweep {

namespace {

harness::SupplySpec
supplySpecFor(const Cell &cell)
{
    harness::SupplySpec spec;
    if (!cell.env.empty()) {
        spec.setup = harness::PowerSetup::TraceEnv;
        spec.traceEnv = cell.env;
        spec.seed = cell.seed;
        if (cell.capUf > 0.0)
            spec.capacitanceF = cell.capUf * 1e-6;
        return spec;
    }
    switch (cell.supply.kind) {
      case SupplyKind::Continuous:
        spec = harness::continuousSpec();
        break;
      case SupplyKind::Pattern:
        spec = harness::patternSpec(
            static_cast<TimeNs>(cell.supply.periodMs *
                                static_cast<double>(kNsPerMs)),
            cell.supply.onFraction);
        break;
      case SupplyKind::Rf:
        spec.setup = harness::PowerSetup::RfHarvested;
        break;
      case SupplyKind::Stochastic:
        spec.setup = harness::PowerSetup::Stochastic;
        break;
    }
    spec.seed = cell.seed;
    if (cell.capUf > 0.0)
        spec.capacitanceF = cell.capUf * 1e-6;
    return spec;
}

/**
 * One fresh board + runtime + app, exactly like the checker's
 * reference runs: nothing persists between cells, so a cell's result
 * depends only on its configuration.
 */
template <typename MakeRt, typename MakeApp>
CellResult
runWith(const Cell &cell, TimeNs budget, const MakeRt &makeRt,
        const MakeApp &makeApp)
{
    auto board = harness::makeBoard(supplySpecFor(cell), cell.seed);
    auto rt = makeRt();
    auto app = makeApp(*board, *rt);

    std::function<void()> entry;
    if constexpr (requires { app->main(); })
        entry = [&app] { app->main(); };

    board::RunResult res;
    {
        perf::HostScope scope(perf::HostZone::SimCore);
        res = board->run(*rt, std::move(entry), budget);
    }

    CellResult out;
    out.completed = res.completed;
    out.starved = res.starved;
    out.verified = app->verify();
    out.reboots = res.reboots;
    out.cycles = res.cycles;
    out.elapsedNs = res.elapsed;
    out.onTimeNs = res.onTime;
    out.simMs.sample(out.simMsValue());
    return out;
}

template <typename MakeRt>
CellResult
runLegacyApp(const Cell &cell, TimeNs budget, const MakeRt &makeRt)
{
    if (cell.app == "AR") {
        return runWith(cell, budget, makeRt,
                       [](board::Board &b, auto &rt) {
                           return std::make_unique<apps::ArLegacyApp>(
                               b, rt, apps::ArParams{});
                       });
    }
    if (cell.app == "BC") {
        return runWith(cell, budget, makeRt,
                       [](board::Board &b, auto &rt) {
                           return std::make_unique<apps::BcLegacyApp>(
                               b, rt, apps::BcParams{});
                       });
    }
    return runWith(cell, budget, makeRt,
                   [](board::Board &b, auto &rt) {
                       return std::make_unique<apps::CuckooLegacyApp>(
                           b, rt, apps::CuckooParams{});
                   });
}

} // namespace

CellResult
runCell(const Cell &cell, const SweepConfig &cfg)
{
    // Plain C under an interrupting supply restarts from scratch every
    // reboot; time-box it like the checker does. Environment traces
    // are always interrupting (that is their point).
    const bool interrupting =
        !cell.env.empty() ||
        cell.supply.kind != SupplyKind::Continuous;
    const TimeNs budget = (cell.runtime == "plain-C" && interrupting)
                              ? cfg.unprotectedBudget
                              : cfg.budget;

    if (cell.runtime == "plain-C") {
        return runLegacyApp(cell, budget, [] {
            return std::make_unique<runtimes::PlainCRuntime>();
        });
    }
    if (cell.runtime == "TICS") {
        const std::uint32_t seg =
            cell.segmentBytes ? cell.segmentBytes : 256;
        return runLegacyApp(cell, budget, [seg] {
            tics::TicsConfig tc;
            tc.segmentBytes = seg;
            tc.policy = tics::PolicyKind::Timer;
            tc.timerPeriod = 10 * kNsPerMs;
            return std::make_unique<tics::TicsRuntime>(tc);
        });
    }
    if (cell.runtime == "MementOS-like") {
        return runLegacyApp(cell, budget, [] {
            return std::make_unique<runtimes::MementosRuntime>();
        });
    }
    if (cell.runtime == "Chinchilla-like") {
        const auto makeRt = [] {
            return std::make_unique<runtimes::ChinchillaRuntime>();
        };
        if (cell.app == "AR") {
            return runWith(
                cell, budget, makeRt, [](board::Board &b, auto &rt) {
                    return std::make_unique<apps::ArChinchillaApp>(
                        b, rt, apps::ArParams{});
                });
        }
        if (cell.app == "BC") {
            // Chinchilla cannot compile the recursive BC; the sweep
            // runs the hand-derecursed variant (Fig. 9's extra row).
            return runWith(
                cell, budget, makeRt, [](board::Board &b, auto &rt) {
                    return std::make_unique<apps::BcChinchillaApp>(
                        b, rt, apps::BcParams{});
                });
        }
        return runWith(
            cell, budget, makeRt, [](board::Board &b, auto &rt) {
                return std::make_unique<apps::CuckooChinchillaApp>(
                    b, rt, apps::CuckooParams{});
            });
    }
    if (cell.runtime == "Alpaca-like") {
        const auto makeRt = [] {
            return std::make_unique<taskrt::TaskRuntime>();
        };
        if (cell.app == "AR") {
            return runWith(
                cell, budget, makeRt, [](board::Board &b, auto &rt) {
                    return std::make_unique<apps::ArTaskApp>(
                        b, rt, apps::ArParams{});
                });
        }
        if (cell.app == "BC") {
            return runWith(
                cell, budget, makeRt, [](board::Board &b, auto &rt) {
                    return std::make_unique<apps::BcTaskApp>(
                        b, rt, apps::BcParams{});
                });
        }
        return runWith(
            cell, budget, makeRt, [](board::Board &b, auto &rt) {
                return std::make_unique<apps::CuckooTaskApp>(
                    b, rt, apps::CuckooParams{});
            });
    }
    fatal("ticssweep: unknown runtime '%s'", cell.runtime.c_str());
}

SweepResult
runSweep(const SweepConfig &cfg)
{
    SweepResult result;
    const std::vector<Cell> cells = cfg.grid.cells();
    result.cells.resize(cells.size());

    const ResultCache cache(cfg.useCache ? cfg.cacheDir
                                         : std::string());
    const JobPool pool(cfg.jobs);
    result.jobs = pool.jobs();

    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};

    const auto wallStart = std::chrono::steady_clock::now();
    pool.run(cells.size(), [&](std::size_t i) {
        const Cell &cell = cells[i];
        SweepCellOutcome &out = result.cells[i];
        out.cell = cell;
        {
            perf::HostScope scope(perf::HostZone::CacheIo);
            if (cache.lookup(cell, out.result)) {
                out.fromCache = true;
                hits.fetch_add(1, std::memory_order_relaxed);
                return;
            }
        }
        // Tag this worker's log lines with the cell's JobId for the
        // duration of the run.
        const std::string tag = cell.jobIdHex();
        ScopedLogJobTag logTag(tag.c_str());
        out.result = runCell(cell, cfg);
        out.fromCache = false;
        if (cache.enabled()) {
            perf::HostScope scope(perf::HostZone::CacheIo);
            cache.store(cell, out.result);
            misses.fetch_add(1, std::memory_order_relaxed);
        }
    });
    const auto wallEnd = std::chrono::steady_clock::now();
    result.wallMs =
        std::chrono::duration<double, std::milli>(wallEnd - wallStart)
            .count();
    result.cacheHits = hits.load();
    result.cacheMisses = misses.load();

    result.aggregates = aggregateOutcomes(result.cells);
    return result;
}

std::vector<SweepAggregate>
aggregateOutcomes(const std::vector<SweepCellOutcome> &cells)
{
    // Aggregate across seeds: groups keyed by the configuration minus
    // the seed, merged in the cells' canonical JobId order (std::map
    // makes the group order itself deterministic too).
    perf::HostScope aggScope(perf::HostZone::Aggregate);
    std::map<std::string, SweepAggregate> groups;
    for (const SweepCellOutcome &out : cells) {
        const std::string key = out.cell.groupKey();
        auto [it, inserted] =
            groups.try_emplace(key, SweepAggregate{});
        SweepAggregate &agg = it->second;
        if (inserted) {
            agg.groupKey = key;
            agg.representative = out.cell;
        }
        ++agg.cellsMerged;
        if (out.result.completed)
            ++agg.completedCells;
        agg.simMs.merge(out.result.simMs);
    }
    std::vector<SweepAggregate> aggregates;
    aggregates.reserve(groups.size());
    for (auto &kv : groups)
        aggregates.push_back(std::move(kv.second));
    return aggregates;
}

harness::GridSection
toGridSection(const SweepResult &r, bool stable)
{
    harness::GridSection g;
    g.cacheHits = stable ? 0 : r.cacheHits;
    g.cacheMisses = stable ? 0 : r.cacheMisses;
    g.jobs = stable ? 0 : r.jobs;
    g.wallMs = stable ? 0.0 : r.wallMs;
    for (const auto &out : r.cells) {
        harness::GridCellEntry e;
        e.jobId = out.cell.jobIdHex();
        e.app = out.cell.app;
        e.runtime = out.cell.runtime;
        e.supply = out.cell.supply.token();
        e.capUf = out.cell.capUf;
        e.segmentBytes = out.cell.segmentBytes;
        e.env = out.cell.env;
        e.seed = out.cell.seed;
        e.completed = out.result.completed;
        e.starved = out.result.starved;
        e.verified = out.result.verified;
        e.reboots = out.result.reboots;
        e.cycles = out.result.cycles;
        e.elapsedNs = out.result.elapsedNs;
        e.onTimeNs = out.result.onTimeNs;
        e.simMs = out.result.simMsValue();
        e.cached = stable ? false : out.fromCache;
        g.cells.push_back(std::move(e));
    }
    for (const auto &agg : r.aggregates) {
        harness::GridAggregateEntry e;
        e.app = agg.representative.app;
        e.runtime = agg.representative.runtime;
        e.supply = agg.representative.supply.token();
        e.capUf = agg.representative.capUf;
        e.segmentBytes = agg.representative.segmentBytes;
        e.env = agg.representative.env;
        e.cells = agg.cellsMerged;
        e.completed = agg.completedCells;
        e.mean = agg.simMs.mean();
        e.stddev = agg.simMs.stddev();
        e.min = agg.simMs.min();
        e.max = agg.simMs.max();
        e.p50 = agg.simMs.p50();
        e.p95 = agg.simMs.p95();
        e.p99 = agg.simMs.p99();
        g.aggregates.push_back(std::move(e));
    }
    return g;
}

Table
sweepTable(const SweepResult &r)
{
    Table t("ticssweep: per-cell results");
    t.header({"JobId", "App", "Runtime", "Supply", "Cap uF", "Seg",
              "Seed", "Done", "Verified", "Reboots", "Sim ms",
              "Cached"});
    for (const auto &out : r.cells) {
        const Cell &c = out.cell;
        t.row()
            .cell(c.jobIdHex())
            .cell(c.app)
            .cell(c.runtime)
            .cell(c.env.empty() ? c.supply.token() : "env:" + c.env)
            .cell(c.capUf)
            .cell(static_cast<std::uint64_t>(c.segmentBytes))
            .cell(c.seed)
            .cell(out.result.completed ? "yes" : "no")
            .cell(out.result.verified ? "yes" : "no")
            .cell(out.result.reboots)
            .cell(out.result.simMsValue())
            .cell(out.fromCache ? "hit" : "run");
    }
    return t;
}

Table
aggregateTable(const SweepResult &r)
{
    Table t("ticssweep: cross-seed aggregates (powered sim ms)");
    t.header({"App", "Runtime", "Supply", "Cap uF", "Seg", "Cells",
              "Done", "Mean", "Stddev", "p50", "p95", "p99"});
    for (const auto &agg : r.aggregates) {
        const Cell &c = agg.representative;
        t.row()
            .cell(c.app)
            .cell(c.runtime)
            .cell(c.env.empty() ? c.supply.token() : "env:" + c.env)
            .cell(c.capUf)
            .cell(static_cast<std::uint64_t>(c.segmentBytes))
            .cell(agg.cellsMerged)
            .cell(agg.completedCells)
            .cell(agg.simMs.mean())
            .cell(agg.simMs.stddev())
            .cell(agg.simMs.p50())
            .cell(agg.simMs.p95())
            .cell(agg.simMs.p99());
    }
    return t;
}

} // namespace ticsim::sweep
