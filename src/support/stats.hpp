/**
 * @file
 * Lightweight statistics package in the spirit of gem5's stats: named
 * counters, scalars and histograms grouped per component, dumpable in a
 * human-readable listing. Benchmark harnesses read stats by name to
 * build the paper's tables, and the run-report exporter serializes
 * whole groups to JSON.
 */

#ifndef TICSIM_SUPPORT_STATS_HPP
#define TICSIM_SUPPORT_STATS_HPP

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace ticsim {

/** Monotonic event counter. */
class Counter
{
  public:
    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Running scalar statistic: min/max/mean, a numerically stable
 * standard deviation (Welford's online recurrence — the naive
 * sum-of-squares form cancels catastrophically for tight clusters of
 * large samples, e.g. nanosecond timestamps), and a log-bucketed
 * histogram for percentile queries.
 *
 * The histogram has a fixed bucket layout: one bucket for values
 * <= 0 plus kSubBuckets buckets per power of two across a wide
 * exponent range, giving a bounded relative error of about
 * 1/(2*kSubBuckets) per query with a few KiB of fixed storage.
 */
class Distribution
{
  public:
    Distribution();

    void sample(double v);
    void reset();

    /**
     * Fold another distribution's samples into this one, as if every
     * sample() call on @p other had been made here instead. Uses the
     * parallel Welford combination (Chan et al.) for the mean and
     * squared-deviation sum, so sweep shards merged in any order give
     * the same mean/stddev as a single-pass accumulation up to
     * floating-point rounding, and bucket-wise histogram addition so
     * percentiles are exact with respect to the shared bucket layout.
     */
    void merge(const Distribution &other);

    /**
     * Serialize the full state (moments plus non-empty histogram
     * buckets) to a compact text form for the sweep result cache.
     * Doubles use %.17g so decode() round-trips bit-exactly and a
     * cache-hit replay emits byte-identical JSON reports.
     */
    std::string encode() const;

    /** Rebuild from encode() output. @return false on malformed text
     *  (the distribution is reset in that case). */
    bool decode(const std::string &text);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    /** Sample standard deviation (0 for < 2 samples). */
    double stddev() const;

    /**
     * Approximate quantile for @p fraction in [0, 1] from the bucketed
     * histogram, clamped to the exact [min, max] envelope. 0 with no
     * samples.
     */
    double percentile(double fraction) const;

    double p50() const { return percentile(0.50); }
    double p95() const { return percentile(0.95); }
    double p99() const { return percentile(0.99); }

    /**
     * The bucket layout is public so the static analyses' discrete
     * PMFs (verify/prob) can share it: a statically derived percentile
     * and a simulated one land in the same bucket when they agree, so
     * cross-validation compares like with like.
     */

    /** Histogram bucket resolution (buckets per power of two). */
    static constexpr int kSubBuckets = 8;
    static constexpr int kMinExp = -20; ///< ~1e-6 lower edge
    static constexpr int kMaxExp = 49;  ///< ~5.6e14 upper edge
    static constexpr int kBuckets =
        1 + (kMaxExp - kMinExp + 1) * kSubBuckets;

    /** Bucket index of @p v (0: the <= 0 underflow bucket). */
    static int bucketIndex(double v);
    /** Representative midpoint of bucket @p idx. */
    static double bucketMid(int idx);

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0; ///< Welford's sum of squared deviations
    double min_ = 0.0;
    double max_ = 0.0;
    std::vector<std::uint64_t> hist_;
};

/**
 * A named bag of statistics owned by a component. Components register
 * their counters/distributions once; the group formats them on dump()
 * and exposes them for programmatic lookup.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    Counter &counter(const std::string &name);
    Distribution &distribution(const std::string &name);

    /** Scalar slot for values computed by the component itself. */
    void setScalar(const std::string &name, double value);

    bool hasCounter(const std::string &name) const;
    std::uint64_t counterValue(const std::string &name) const;
    double scalarValue(const std::string &name) const;

    const std::string &name() const { return name_; }

    // Read-only iteration for exporters (JSON run reports).
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Distribution> &distributions() const
    {
        return distributions_;
    }
    const std::map<std::string, double> &scalars() const
    {
        return scalars_;
    }

    /** Zero every statistic in the group. */
    void resetAll();

    /** Human-readable listing (one stat per line, gem5-style). */
    void dump(std::ostream &os) const;

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Distribution> distributions_;
    std::map<std::string, double> scalars_;
};

} // namespace ticsim

#endif // TICSIM_SUPPORT_STATS_HPP
