/**
 * @file
 * Lightweight statistics package in the spirit of gem5's stats: named
 * counters, scalars and histograms grouped per component, dumpable in a
 * human-readable listing. Benchmark harnesses read stats by name to
 * build the paper's tables.
 */

#ifndef TICSIM_SUPPORT_STATS_HPP
#define TICSIM_SUPPORT_STATS_HPP

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace ticsim {

/** Monotonic event counter. */
class Counter
{
  public:
    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running scalar statistic (min/max/mean over samples). */
class Distribution
{
  public:
    void sample(double v);
    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    /** Sample standard deviation (0 for < 2 samples). */
    double stddev() const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A named bag of statistics owned by a component. Components register
 * their counters/distributions once; the group formats them on dump()
 * and exposes them for programmatic lookup.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    Counter &counter(const std::string &name);
    Distribution &distribution(const std::string &name);

    /** Scalar slot for values computed by the component itself. */
    void setScalar(const std::string &name, double value);

    bool hasCounter(const std::string &name) const;
    std::uint64_t counterValue(const std::string &name) const;
    double scalarValue(const std::string &name) const;

    const std::string &name() const { return name_; }

    /** Zero every statistic in the group. */
    void resetAll();

    /** Human-readable listing (one stat per line, gem5-style). */
    void dump(std::ostream &os) const;

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Distribution> distributions_;
    std::map<std::string, double> scalars_;
};

} // namespace ticsim

#endif // TICSIM_SUPPORT_STATS_HPP
