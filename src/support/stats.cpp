#include "stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "logging.hpp"

namespace {

/** Bit-exact double-to-text for the cache encoding. */
std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

namespace ticsim {

Distribution::Distribution() : hist_(kBuckets, 0) {}

int
Distribution::bucketIndex(double v)
{
    if (!(v > 0.0))
        return 0; // zero, negative and NaN share the underflow bucket
    int exp = 0;
    const double m = std::frexp(v, &exp); // m in [0.5, 1)
    exp = std::clamp(exp, kMinExp, kMaxExp);
    int sub = static_cast<int>((m - 0.5) * 2.0 * kSubBuckets);
    sub = std::clamp(sub, 0, kSubBuckets - 1);
    return 1 + (exp - kMinExp) * kSubBuckets + sub;
}

double
Distribution::bucketMid(int idx)
{
    if (idx <= 0)
        return 0.0;
    const int rel = idx - 1;
    const int exp = kMinExp + rel / kSubBuckets;
    const int sub = rel % kSubBuckets;
    const double lo =
        std::ldexp(0.5 + sub / (2.0 * kSubBuckets), exp);
    const double hi =
        std::ldexp(0.5 + (sub + 1) / (2.0 * kSubBuckets), exp);
    return 0.5 * (lo + hi);
}

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
    }
    ++count_;
    sum_ += v;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
    ++hist_[static_cast<std::size_t>(bucketIndex(v))];
}

void
Distribution::reset()
{
    *this = Distribution();
}

void
Distribution::merge(const Distribution &other)
{
    if (other.count_ == 0)
        return; // empty shard: nothing to fold in
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double n = na + nb;
    const double delta = other.mean_ - mean_;
    // Chan et al. parallel update: the cross term accounts for the two
    // shards' means disagreeing.
    mean_ += delta * (nb / n);
    m2_ += other.m2_ + delta * delta * (na * nb / n);
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    for (int i = 0; i < kBuckets; ++i)
        hist_[static_cast<std::size_t>(i)] +=
            other.hist_[static_cast<std::size_t>(i)];
}

std::string
Distribution::encode() const
{
    std::ostringstream os;
    os << count_ << ' ' << fmtDouble(sum_) << ' ' << fmtDouble(mean_)
       << ' ' << fmtDouble(m2_) << ' ' << fmtDouble(min_) << ' '
       << fmtDouble(max_);
    // Sparse histogram: "index:count" for non-empty buckets only.
    for (int i = 0; i < kBuckets; ++i) {
        const std::uint64_t c = hist_[static_cast<std::size_t>(i)];
        if (c != 0)
            os << ' ' << i << ':' << c;
    }
    return os.str();
}

bool
Distribution::decode(const std::string &text)
{
    reset();
    std::istringstream is(text);
    if (!(is >> count_ >> sum_ >> mean_ >> m2_ >> min_ >> max_)) {
        reset();
        return false;
    }
    std::string tok;
    while (is >> tok) {
        const auto colon = tok.find(':');
        if (colon == std::string::npos) {
            reset();
            return false;
        }
        int idx = -1;
        std::uint64_t c = 0;
        try {
            idx = std::stoi(tok.substr(0, colon));
            c = std::stoull(tok.substr(colon + 1));
        } catch (...) {
            reset();
            return false;
        }
        if (idx < 0 || idx >= kBuckets) {
            reset();
            return false;
        }
        hist_[static_cast<std::size_t>(idx)] = c;
    }
    return true;
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    const double var = m2_ / static_cast<double>(count_ - 1);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

double
Distribution::percentile(double fraction) const
{
    if (count_ == 0)
        return 0.0;
    fraction = std::clamp(fraction, 0.0, 1.0);
    // Nearest-rank over the bucket counts.
    const auto rank = static_cast<std::uint64_t>(std::max(
        1.0, std::ceil(fraction * static_cast<double>(count_))));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += hist_[static_cast<std::size_t>(i)];
        if (seen >= rank)
            return std::clamp(bucketMid(i), min_, max_);
    }
    return max_;
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

Distribution &
StatGroup::distribution(const std::string &name)
{
    return distributions_[name];
}

void
StatGroup::setScalar(const std::string &name, double value)
{
    scalars_[name] = value;
}

bool
StatGroup::hasCounter(const std::string &name) const
{
    return counters_.count(name) != 0;
}

std::uint64_t
StatGroup::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

double
StatGroup::scalarValue(const std::string &name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? 0.0 : it->second;
}

void
StatGroup::resetAll()
{
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : distributions_)
        kv.second.reset();
    scalars_.clear();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &kv : counters_)
        os << name_ << '.' << kv.first << "  " << kv.second.value() << '\n';
    for (const auto &kv : scalars_)
        os << name_ << '.' << kv.first << "  " << kv.second << '\n';
    for (const auto &kv : distributions_) {
        const auto &d = kv.second;
        os << name_ << '.' << kv.first << "  n=" << d.count()
           << " mean=" << d.mean() << " min=" << d.min()
           << " max=" << d.max() << " sd=" << d.stddev()
           << " p50=" << d.p50() << " p95=" << d.p95()
           << " p99=" << d.p99() << '\n';
    }
}

} // namespace ticsim
