#include "stats.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "logging.hpp"

namespace ticsim {

Distribution::Distribution() : hist_(kBuckets, 0) {}

int
Distribution::bucketIndex(double v)
{
    if (!(v > 0.0))
        return 0; // zero, negative and NaN share the underflow bucket
    int exp = 0;
    const double m = std::frexp(v, &exp); // m in [0.5, 1)
    exp = std::clamp(exp, kMinExp, kMaxExp);
    int sub = static_cast<int>((m - 0.5) * 2.0 * kSubBuckets);
    sub = std::clamp(sub, 0, kSubBuckets - 1);
    return 1 + (exp - kMinExp) * kSubBuckets + sub;
}

double
Distribution::bucketMid(int idx)
{
    if (idx <= 0)
        return 0.0;
    const int rel = idx - 1;
    const int exp = kMinExp + rel / kSubBuckets;
    const int sub = rel % kSubBuckets;
    const double lo =
        std::ldexp(0.5 + sub / (2.0 * kSubBuckets), exp);
    const double hi =
        std::ldexp(0.5 + (sub + 1) / (2.0 * kSubBuckets), exp);
    return 0.5 * (lo + hi);
}

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
    }
    ++count_;
    sum_ += v;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
    ++hist_[static_cast<std::size_t>(bucketIndex(v))];
}

void
Distribution::reset()
{
    *this = Distribution();
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    const double var = m2_ / static_cast<double>(count_ - 1);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

double
Distribution::percentile(double fraction) const
{
    if (count_ == 0)
        return 0.0;
    fraction = std::clamp(fraction, 0.0, 1.0);
    // Nearest-rank over the bucket counts.
    const auto rank = static_cast<std::uint64_t>(std::max(
        1.0, std::ceil(fraction * static_cast<double>(count_))));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += hist_[static_cast<std::size_t>(i)];
        if (seen >= rank)
            return std::clamp(bucketMid(i), min_, max_);
    }
    return max_;
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

Distribution &
StatGroup::distribution(const std::string &name)
{
    return distributions_[name];
}

void
StatGroup::setScalar(const std::string &name, double value)
{
    scalars_[name] = value;
}

bool
StatGroup::hasCounter(const std::string &name) const
{
    return counters_.count(name) != 0;
}

std::uint64_t
StatGroup::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

double
StatGroup::scalarValue(const std::string &name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? 0.0 : it->second;
}

void
StatGroup::resetAll()
{
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : distributions_)
        kv.second.reset();
    scalars_.clear();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &kv : counters_)
        os << name_ << '.' << kv.first << "  " << kv.second.value() << '\n';
    for (const auto &kv : scalars_)
        os << name_ << '.' << kv.first << "  " << kv.second << '\n';
    for (const auto &kv : distributions_) {
        const auto &d = kv.second;
        os << name_ << '.' << kv.first << "  n=" << d.count()
           << " mean=" << d.mean() << " min=" << d.min()
           << " max=" << d.max() << " sd=" << d.stddev()
           << " p50=" << d.p50() << " p95=" << d.p95()
           << " p99=" << d.p99() << '\n';
    }
}

} // namespace ticsim
