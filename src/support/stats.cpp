#include "stats.hpp"

#include <cmath>
#include <iomanip>

#include "logging.hpp"

namespace ticsim {

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
    }
    ++count_;
    sum_ += v;
    sumSq_ += v * v;
}

void
Distribution::reset()
{
    *this = Distribution();
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    const double n = static_cast<double>(count_);
    const double var = (sumSq_ - sum_ * sum_ / n) / (n - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

Distribution &
StatGroup::distribution(const std::string &name)
{
    return distributions_[name];
}

void
StatGroup::setScalar(const std::string &name, double value)
{
    scalars_[name] = value;
}

bool
StatGroup::hasCounter(const std::string &name) const
{
    return counters_.count(name) != 0;
}

std::uint64_t
StatGroup::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

double
StatGroup::scalarValue(const std::string &name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? 0.0 : it->second;
}

void
StatGroup::resetAll()
{
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : distributions_)
        kv.second.reset();
    scalars_.clear();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &kv : counters_)
        os << name_ << '.' << kv.first << "  " << kv.second.value() << '\n';
    for (const auto &kv : scalars_)
        os << name_ << '.' << kv.first << "  " << kv.second << '\n';
    for (const auto &kv : distributions_) {
        const auto &d = kv.second;
        os << name_ << '.' << kv.first << "  n=" << d.count()
           << " mean=" << d.mean() << " min=" << d.min()
           << " max=" << d.max() << " sd=" << d.stddev() << '\n';
    }
}

} // namespace ticsim
