#include "logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ticsim {

Logger::Logger()
{
    const char *env = std::getenv("TICSIM_LOG");
    if (env == nullptr)
        return;
    if (std::strcmp(env, "quiet") == 0) {
        level_ = LogLevel::Quiet;
    } else if (std::strcmp(env, "normal") == 0) {
        level_ = LogLevel::Normal;
    } else if (std::strcmp(env, "debug") == 0) {
        level_ = LogLevel::Debug;
    } else {
        std::fprintf(stderr,
                     "warn: TICSIM_LOG=%s not one of quiet/normal/debug; "
                     "keeping default\n",
                     env);
    }
}

Logger &
Logger::get()
{
    static Logger instance;
    return instance;
}

void
Logger::vlog(LogLevel level, const char *prefix, const char *fmt,
             std::va_list ap)
{
    if (level > level_)
        return;
    if (clockNs_ != nullptr) {
        std::fprintf(stderr, "[%12.3f ms] ",
                     static_cast<double>(*clockNs_) / 1e6);
    }
    std::fprintf(stderr, "%s", prefix);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "panic: ");
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "fatal: ");
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    Logger::get().vlog(LogLevel::Normal, "warn: ", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    Logger::get().vlog(LogLevel::Normal, "info: ", fmt, ap);
    va_end(ap);
}

void
debugLog(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    Logger::get().vlog(LogLevel::Debug, "debug: ", fmt, ap);
    va_end(ap);
}

namespace detail {

void
assertFail(const char *cond)
{
    std::fprintf(stderr, "panic: assertion failed: %s\n", cond);
    std::abort();
}

void
assertFail(const char *cond, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: assertion failed: %s", cond);
    if (fmt && fmt[0] != '\0') {
        std::fprintf(stderr, ": ");
        std::va_list ap;
        va_start(ap, fmt);
        std::vfprintf(stderr, fmt, ap);
        va_end(ap);
    }
    std::fputc('\n', stderr);
    std::abort();
}

} // namespace detail

} // namespace ticsim
