#include "logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace ticsim {

namespace {

/** Per-thread virtual-clock binding for the log-line prefix. */
thread_local const std::uint64_t *tlsClockNs = nullptr;

/** Per-thread sweep-cell job tag (nullptr outside a sweep). */
thread_local const char *tlsJobTag = nullptr;

/** Serializes line emission across concurrent sweep workers. */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

Logger::Logger()
{
    // Read TICSIM_LOG exactly once, in the Magic Statics-guarded
    // singleton constructor. Worker threads only ever see the cached
    // atomic level; they never touch the environment.
    const char *env = std::getenv("TICSIM_LOG");
    if (env == nullptr)
        return;
    if (std::strcmp(env, "quiet") == 0) {
        setLevel(LogLevel::Quiet);
    } else if (std::strcmp(env, "normal") == 0) {
        setLevel(LogLevel::Normal);
    } else if (std::strcmp(env, "debug") == 0) {
        setLevel(LogLevel::Debug);
    } else {
        std::fprintf(stderr,
                     "warn: TICSIM_LOG=%s not one of quiet/normal/debug; "
                     "keeping default\n",
                     env);
    }
}

Logger &
Logger::get()
{
    static Logger instance;
    return instance;
}

const std::uint64_t *
Logger::setClock(const std::uint64_t *nowNs)
{
    const std::uint64_t *prev = tlsClockNs;
    tlsClockNs = nowNs;
    return prev;
}

const char *
Logger::setJobTag(const char *tag)
{
    const char *prev = tlsJobTag;
    tlsJobTag = tag;
    return prev;
}

void
Logger::vlog(LogLevel level, const char *prefix, const char *fmt,
             std::va_list ap)
{
    if (level > this->level())
        return;
    // One lock per line: the prefix (job tag + the calling board's
    // virtual time), body and newline must never interleave with
    // another worker's output.
    std::lock_guard<std::mutex> lock(logMutex());
    if (tlsJobTag != nullptr)
        std::fprintf(stderr, "[%s] ", tlsJobTag);
    if (tlsClockNs != nullptr) {
        std::fprintf(stderr, "[%12.3f ms] ",
                     static_cast<double>(*tlsClockNs) / 1e6);
    }
    std::fprintf(stderr, "%s", prefix);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "panic: ");
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "fatal: ");
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    Logger::get().vlog(LogLevel::Normal, "warn: ", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    Logger::get().vlog(LogLevel::Normal, "info: ", fmt, ap);
    va_end(ap);
}

void
debugLog(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    Logger::get().vlog(LogLevel::Debug, "debug: ", fmt, ap);
    va_end(ap);
}

namespace detail {

void
assertFail(const char *cond)
{
    std::fprintf(stderr, "panic: assertion failed: %s\n", cond);
    std::abort();
}

void
assertFail(const char *cond, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: assertion failed: %s", cond);
    if (fmt && fmt[0] != '\0') {
        std::fprintf(stderr, ": ");
        std::va_list ap;
        va_start(ap, fmt);
        std::vfprintf(stderr, fmt, ap);
        va_end(ap);
    }
    std::fputc('\n', stderr);
    std::abort();
}

} // namespace detail

} // namespace ticsim
