/**
 * @file
 * Strong unit types shared across the simulator.
 *
 * The simulated MCU runs at a configurable clock (default 1 MHz as in
 * the paper's Table 4), so one Cycle == 1 us at the default frequency.
 * Virtual wall-clock time is held in nanoseconds to keep sub-cycle
 * precision when mixing clock domains (MCU clock vs. RTC vs. harvester
 * integration steps).
 */

#ifndef TICSIM_SUPPORT_UNITS_HPP
#define TICSIM_SUPPORT_UNITS_HPP

#include <cstdint>

namespace ticsim {

/** Count of MCU clock cycles. */
using Cycles = std::uint64_t;

/** Virtual time in nanoseconds since simulation start. */
using TimeNs = std::uint64_t;

/** Energy in joules; voltages in volts; capacitance in farads. */
using Joules = double;
using Volts = double;
using Farads = double;
using Watts = double;

/** Simulated (modeled) byte address inside the device address space. */
using Addr = std::uint32_t;

constexpr TimeNs kNsPerUs = 1000ULL;
constexpr TimeNs kNsPerMs = 1000ULL * kNsPerUs;
constexpr TimeNs kNsPerSec = 1000ULL * kNsPerMs;

/** Convert nanoseconds to (truncated) microseconds. */
constexpr std::uint64_t
nsToUs(TimeNs t)
{
    return t / kNsPerUs;
}

/** Convert nanoseconds to fractional seconds. */
constexpr double
nsToSec(TimeNs t)
{
    return static_cast<double>(t) / static_cast<double>(kNsPerSec);
}

/** Convert fractional seconds to nanoseconds (saturating at >= 0). */
constexpr TimeNs
secToNs(double s)
{
    return s <= 0.0 ? 0 : static_cast<TimeNs>(s * 1e9);
}

constexpr TimeNs
usToNs(std::uint64_t us)
{
    return us * kNsPerUs;
}

constexpr TimeNs
msToNs(std::uint64_t ms)
{
    return ms * kNsPerMs;
}

} // namespace ticsim

#endif // TICSIM_SUPPORT_UNITS_HPP
