/**
 * @file
 * Minimal streaming JSON writer (no external dependencies).
 *
 * Emits syntactically valid JSON to an ostream with automatic comma
 * placement and string escaping. Used by the telemetry trace exporter
 * and the benchmark run-report exporter; deliberately write-only — the
 * simulator never needs to parse JSON.
 */

#ifndef TICSIM_SUPPORT_JSON_HPP
#define TICSIM_SUPPORT_JSON_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace ticsim {

class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    // ---- containers ------------------------------------------------------
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Object member key; follow with a value or container call. */
    JsonWriter &key(const std::string &k);

    // ---- values ----------------------------------------------------------
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(bool v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(std::uint32_t v) { return value(std::uint64_t{v}); }
    JsonWriter &value(int v) { return value(std::int64_t{v}); }
    JsonWriter &null();

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    member(const std::string &k, const T &v)
    {
        key(k);
        return value(v);
    }

    /** Escape and quote @p s per RFC 8259. */
    static std::string escape(const std::string &s);

  private:
    /** Comma separation before a value/key at the current nesting. */
    void sep();

    std::ostream &os_;
    /** Per-nesting-level "a first element was emitted" flags. */
    std::vector<bool> hasElem_{false};
    bool pendingKey_ = false;
};

} // namespace ticsim

#endif // TICSIM_SUPPORT_JSON_HPP
