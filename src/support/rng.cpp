#include "rng.hpp"

#include <cmath>

namespace ticsim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    // Simple rejection-free modulo; bias is negligible for our bounds.
    return bound == 0 ? 0 : next() % bound;
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    if (hi <= lo)
        return lo;
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double
Rng::uniform()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

double
Rng::gaussian(double mean, double stddev)
{
    double acc = 0.0;
    for (int i = 0; i < 12; ++i)
        acc += uniform();
    return mean + stddev * (acc - 6.0);
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xD1F7C0DEULL);
}

} // namespace ticsim
