/**
 * @file
 * ASCII table and CSV emission used by the benchmark harnesses to print
 * paper-style tables (Tables 1-4) and figure series (Fig. 8-10).
 */

#ifndef TICSIM_SUPPORT_TABLE_HPP
#define TICSIM_SUPPORT_TABLE_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace ticsim {

/**
 * Column-aligned ASCII table builder. Cells are strings; numeric
 * convenience overloads format with limited precision.
 */
class Table
{
  public:
    explicit Table(std::string title = "") : title_(std::move(title)) {}

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Begin a new body row. */
    Table &row();

    /** Append one cell to the current row. */
    Table &cell(const std::string &text);
    Table &cell(const char *text) { return cell(std::string(text)); }
    Table &cell(std::uint64_t v);
    Table &cell(std::int64_t v);
    Table &cell(int v) { return cell(static_cast<std::int64_t>(v)); }
    /** Doubles are printed with the given number of decimals. */
    Table &cell(double v, int decimals = 2);

    /** Insert a horizontal separator before the next row. */
    void separator();

    /** Render the table. */
    void print(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::size_t> separators_;
};

/** Minimal CSV writer (RFC-4180-ish quoting). */
class CsvWriter
{
  public:
    explicit CsvWriter(std::ostream &os) : os_(os) {}

    void row(const std::vector<std::string> &cells);

  private:
    std::ostream &os_;
};

} // namespace ticsim

#endif // TICSIM_SUPPORT_TABLE_HPP
