/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * experiments. Every stochastic component (harvester jitter, sensor
 * noise, failure injection) takes an explicit Rng so whole experiments
 * replay bit-identically from a seed.
 */

#ifndef TICSIM_SUPPORT_RNG_HPP
#define TICSIM_SUPPORT_RNG_HPP

#include <cstdint>

namespace ticsim {

/**
 * xoshiro256** PRNG with a splitmix64 seeder. Small, fast, and good
 * enough statistically for workload generation; never used for
 * security purposes.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x71C5u) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) (bound must be > 0). */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Bernoulli trial with probability p of true. */
    bool chance(double p) { return uniform() < p; }

    /** Approximately normal variate (12-uniform sum method). */
    double gaussian(double mean, double stddev);

    /** Exponential variate with the given mean (> 0). */
    double exponential(double mean);

    /** Fork an independent child stream (stable for a given parent). */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

} // namespace ticsim

#endif // TICSIM_SUPPORT_RNG_HPP
