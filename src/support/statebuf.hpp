/**
 * @file
 * Flat byte-buffer serialization for snapshot/restore.
 *
 * Polymorphic simulator components (supplies, timekeepers, runtimes)
 * expose their mutable dynamics to board::Snapshot through opaque
 * byte blobs: each class appends its fields with StateWriter and
 * reads them back, in the same order, with StateReader. The blob is
 * only ever replayed into the *same object* it was captured from
 * (restore-in-place), so no type tags or versioning are needed —
 * a length mismatch is a programming error and asserts.
 */

#ifndef TICSIM_SUPPORT_STATEBUF_HPP
#define TICSIM_SUPPORT_STATEBUF_HPP

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "support/logging.hpp"

namespace ticsim {

/** Opaque captured state. */
using StateBlob = std::vector<std::uint8_t>;

/** Appends trivially-copyable values to a blob. */
class StateWriter
{
  public:
    template <typename T>
    void
    put(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "state fields must be trivially copyable");
        putBytes(&v, sizeof(T));
    }

    void
    putBytes(const void *p, std::size_t n)
    {
        const std::size_t off = buf_.size();
        buf_.resize(off + n);
        std::memcpy(buf_.data() + off, p, n);
    }

    StateBlob take() { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

  private:
    StateBlob buf_;
};

/** Reads values back in the order they were written. */
class StateReader
{
  public:
    explicit StateReader(const StateBlob &b) : buf_(b) {}

    template <typename T>
    T
    get()
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "state fields must be trivially copyable");
        T v;
        getBytes(&v, sizeof(T));
        return v;
    }

    void
    getBytes(void *p, std::size_t n)
    {
        TICSIM_ASSERT(off_ + n <= buf_.size(), "state blob underrun");
        std::memcpy(p, buf_.data() + off_, n);
        off_ += n;
    }

    /** All bytes consumed — assert this after the last field so a
     *  field-list mismatch cannot pass silently. */
    bool exhausted() const { return off_ == buf_.size(); }

  private:
    const StateBlob &buf_;
    std::size_t off_ = 0;
};

} // namespace ticsim

#endif // TICSIM_SUPPORT_STATEBUF_HPP
