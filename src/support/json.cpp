#include "json.hpp"

#include <cmath>
#include <cstdio>

#include "logging.hpp"

namespace ticsim {

void
JsonWriter::sep()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // the key already placed the comma
    }
    if (hasElem_.back())
        os_ << ',';
    hasElem_.back() = true;
}

JsonWriter &
JsonWriter::beginObject()
{
    sep();
    os_ << '{';
    hasElem_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    TICSIM_ASSERT(hasElem_.size() > 1, "json: endObject at top level");
    hasElem_.pop_back();
    os_ << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    sep();
    os_ << '[';
    hasElem_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    TICSIM_ASSERT(hasElem_.size() > 1, "json: endArray at top level");
    hasElem_.pop_back();
    os_ << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    sep();
    os_ << escape(k) << ':';
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    sep();
    os_ << escape(v);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    sep();
    os_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    sep();
    if (!std::isfinite(v)) {
        os_ << "null"; // JSON has no NaN/Inf
        return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    sep();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    sep();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    sep();
    os_ << "null";
    return *this;
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

} // namespace ticsim
