/**
 * @file
 * Logging and error-reporting helpers, following the gem5 convention:
 * panic() for internal invariant violations (simulator bugs) and
 * fatal() for user/configuration errors, plus warn()/inform() status
 * messages that never stop the simulation.
 */

#ifndef TICSIM_SUPPORT_LOGGING_HPP
#define TICSIM_SUPPORT_LOGGING_HPP

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <string>

namespace ticsim {

/** Verbosity levels for the global logger. */
enum class LogLevel {
    Quiet = 0,  ///< only panic/fatal output
    Normal,     ///< + warn and inform
    Debug,      ///< + debug traces
};

/**
 * Minimal global logger. All simulator diagnostics funnel through here
 * so benchmark binaries can silence the simulator while printing their
 * own tables.
 *
 * The initial level honors the TICSIM_LOG environment variable
 * ("quiet", "normal" or "debug"), read exactly once at first use and
 * cached — concurrent sweep workers must never call getenv() while
 * another thread might be mutating the environment. setLevel() still
 * wins afterwards (the level is atomic, so workers may read it while
 * the main thread adjusts it).
 *
 * The virtual-time clock binding and the sweep job tag are
 * thread-local: every Board runs on exactly one host thread, so the
 * log-line prefix always shows the *calling board's* clock, and lines
 * emitted from inside a sweep cell are tagged with its JobId. Line
 * emission is serialized so concurrent boards never interleave
 * characters within a line.
 */
class Logger
{
  public:
    static Logger &get();

    void setLevel(LogLevel level)
    {
        level_.store(level, std::memory_order_relaxed);
    }
    LogLevel level() const
    {
        return level_.load(std::memory_order_relaxed);
    }

    /**
     * Bind the calling thread's virtual-time source used for the
     * log-line prefix (nullptr unbinds). @return the previous binding,
     * so scoped users (Board::run) can restore it.
     */
    const std::uint64_t *setClock(const std::uint64_t *nowNs);

    /**
     * Tag the calling thread's log lines with a sweep job identifier
     * (nullptr untags). The string must outlive the binding; the sweep
     * engine scopes it around one cell's execution. @return the
     * previous tag, for RAII restoration.
     */
    const char *setJobTag(const char *tag);

    /** printf-style message at the given level (no newline appended). */
    void vlog(LogLevel level, const char *prefix, const char *fmt,
              std::va_list ap);

  private:
    Logger();

    std::atomic<LogLevel> level_{LogLevel::Normal};
};

/** Scoped sweep-cell job tag for the calling thread's log lines. */
class ScopedLogJobTag
{
  public:
    explicit ScopedLogJobTag(const char *tag)
        : prev_(Logger::get().setJobTag(tag))
    {
    }
    ~ScopedLogJobTag() { Logger::get().setJobTag(prev_); }

    ScopedLogJobTag(const ScopedLogJobTag &) = delete;
    ScopedLogJobTag &operator=(const ScopedLogJobTag &) = delete;

  private:
    const char *prev_;
};

/**
 * Abort the process: an internal invariant was violated (simulator
 * bug). Mirrors gem5 panic().
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exit with an error: the condition is the user's fault (bad
 * configuration, invalid arguments). Mirrors gem5 fatal().
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning about questionable but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Debug-level trace message (suppressed unless LogLevel::Debug). */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

namespace detail {
/** Implementation of TICSIM_ASSERT failure reporting. */
[[noreturn]] void assertFail(const char *cond);
[[noreturn]] void assertFail(const char *cond, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));
} // namespace detail

/** panic() unless the condition holds; optional printf-style detail. */
#define TICSIM_ASSERT(cond, ...)                                          \
    do {                                                                  \
        if (!(cond))                                                      \
            ::ticsim::detail::assertFail(#cond __VA_OPT__(, )             \
                                             __VA_ARGS__);               \
    } while (0)

} // namespace ticsim

#endif // TICSIM_SUPPORT_LOGGING_HPP
