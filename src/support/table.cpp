#include "table.hpp"

#include <algorithm>
#include <cstdio>

namespace ticsim {

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &text)
{
    if (rows_.empty())
        rows_.emplace_back();
    rows_.back().push_back(text);
    return *this;
}

Table &
Table::cell(std::uint64_t v)
{
    return cell(std::to_string(v));
}

Table &
Table::cell(std::int64_t v)
{
    return cell(std::to_string(v));
}

Table &
Table::cell(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return cell(std::string(buf));
}

void
Table::separator()
{
    separators_.push_back(rows_.size());
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &r) {
        if (widths.size() < r.size())
            widths.resize(r.size(), 0);
        for (std::size_t i = 0; i < r.size(); ++i)
            widths[i] = std::max(widths[i], r[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    auto rule = [&]() {
        os << '+';
        for (auto w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto line = [&](const std::vector<std::string> &r) {
        os << '|';
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &c = i < r.size() ? r[i] : std::string();
            os << ' ' << c << std::string(widths[i] - c.size() + 1, ' ')
               << '|';
        }
        os << '\n';
    };

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    rule();
    if (!header_.empty()) {
        line(header_);
        rule();
    }
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        if (std::find(separators_.begin(), separators_.end(), i) !=
            separators_.end()) {
            rule();
        }
        line(rows_[i]);
    }
    rule();
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os_ << ',';
        const std::string &c = cells[i];
        if (c.find_first_of(",\"\n") != std::string::npos) {
            os_ << '"';
            for (char ch : c) {
                if (ch == '"')
                    os_ << '"';
                os_ << ch;
            }
            os_ << '"';
        } else {
            os_ << c;
        }
    }
    os_ << '\n';
}

} // namespace ticsim
