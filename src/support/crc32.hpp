/**
 * @file
 * CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over byte
 * ranges. Used by the crash-consistency machinery to validate
 * checkpoint slot headers and undo-log records after torn writes or
 * retention bit flips; a table-driven implementation keeps the host
 * cost negligible even when every boot revalidates both checkpoint
 * images.
 */

#ifndef TICSIM_SUPPORT_CRC32_HPP
#define TICSIM_SUPPORT_CRC32_HPP

#include <cstddef>
#include <cstdint>

namespace ticsim {

/** CRC-32 of [p, p+n), continuing from @p seed (pass the previous
 *  result to chain discontiguous ranges; 0 starts a fresh sum). */
std::uint32_t crc32(const void *p, std::size_t n, std::uint32_t seed = 0);

} // namespace ticsim

#endif // TICSIM_SUPPORT_CRC32_HPP
