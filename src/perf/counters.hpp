/**
 * @file
 * Host-side hot-path counters (DESIGN.md Section 11).
 *
 * The simulator attributes every *simulated* MCU cycle (PhaseProfiler)
 * but was blind to its own *host* cost. These counters instrument the
 * paths the ROADMAP names as hot — nv<T>/NvRam loads and stores, the
 * AccessSink/StoreGate/MemHooks dispatch points (hook-installed vs
 * fast-path-null), undo-log records, checkpoint image traffic,
 * EventRing pushes and JobPool scheduling — so `bench/ticsperf` can
 * report where host work actually goes and `tools/perf_diff.py` can
 * flag when a change moves NV traffic or dispatch mix.
 *
 * Design constraints, in priority order:
 *
 *  1. Observation-only. Counters live entirely on the host side
 *     (plain per-thread uint64 adds); they charge no modeled cycles,
 *     touch no NV state and take no locks, so enabling them — they are
 *     always compiled in — cannot change any simulated result. The
 *     serial-vs-parallel and jobs-1-vs-N byte-diff gates run with
 *     counters live.
 *
 *  2. Per-thread, mergeable. Every simulated Board runs on exactly one
 *     host thread (see mem/trace.hpp), so each thread owns a private
 *     HotCounters block reached through one thread_local pointer; no
 *     atomics on the hot path. Threads register with a process-wide
 *     registry on first use and fold their block into a retired
 *     aggregate when they exit, so mergedCounters() equals the serial
 *     total regardless of how a sweep was scheduled.
 *
 *  3. Cheap. An increment is a thread_local load, an add and a store;
 *     the fast path has no branches beyond the lazy-init check.
 *
 * Snapshot consistency: mergedCounters() reads live threads' blocks
 * without synchronization. Call it when concurrent Boards are
 * quiesced (e.g. after JobPool::run returned) for exact totals;
 * mid-run snapshots are tearing-free per counter on every practical
 * target but may mix counters from different instants.
 */

#ifndef TICSIM_PERF_COUNTERS_HPP
#define TICSIM_PERF_COUNTERS_HPP

#include <cstdint>

namespace ticsim::perf {

/** One thread's hot-path counter block (plain data, mergeable). */
struct HotCounters {
    // ---- instrumented NV data path (nv<T>/nvArray/pointer stores) ----
    std::uint64_t nvLoads = 0;       ///< instrumented NV reads
    std::uint64_t nvLoadBytes = 0;
    std::uint64_t nvStores = 0;      ///< instrumented NV writes
    std::uint64_t nvStoreBytes = 0;
    std::uint64_t nvVersioned = 0;   ///< versioning notifications
    std::uint64_t nvVersionedBytes = 0;

    // ---- dispatch-point splits: hook installed vs fast-path null ----
    std::uint64_t sinkDispatches = 0; ///< AccessSink calls delivered
    std::uint64_t sinkFastNull = 0;   ///< trace calls with no sink
    std::uint64_t gateDispatches = 0; ///< StoreGate::store calls
    std::uint64_t gateFastNull = 0;   ///< gatedStore direct memcpys
    std::uint64_t hookDispatches = 0; ///< MemHooks calls, runtime set
    std::uint64_t hookFastNull = 0;   ///< MemHooks calls, pass-through

    // ---- undo log ----
    std::uint64_t undoRecordsSealed = 0;
    std::uint64_t undoBytesSealed = 0;
    std::uint64_t undoRecordsRolledBack = 0;
    std::uint64_t undoRecordsCorrupt = 0;

    // ---- checkpoint area ----
    std::uint64_t ckptCommits = 0;
    std::uint64_t ckptBytesMoved = 0;   ///< captured images + headers
    std::uint64_t ckptRestores = 0;
    std::uint64_t ckptRestoreBytes = 0;

    // ---- telemetry event ring ----
    std::uint64_t eventPushes = 0;
    std::uint64_t eventDrops = 0;

    // ---- sweep job pool ----
    std::uint64_t jobsExecuted = 0;
    std::uint64_t jobSteals = 0;

    /** Fold @p o into this block (cross-thread merge). */
    void add(const HotCounters &o);

    /** Pointwise difference (for before/after deltas); saturates at 0
     *  so a caller diffing against a stale snapshot never wraps. */
    HotCounters delta(const HotCounters &before) const;

    void reset() { *this = HotCounters{}; }
};

/** Stable snake_case name + member pointer, for serialization, diffs
 *  and exhaustive tests. Order is the report's emission order. */
struct CounterField {
    const char *name;
    std::uint64_t HotCounters::*field;
};

/** Every HotCounters field exactly once. */
const CounterField *counterFields(int &countOut);

namespace detail {
/** The calling thread's block, or nullptr before first use. */
extern thread_local HotCounters *g_hot;
/** Slow path: allocate + register this thread's perf state. */
HotCounters &registerThreadCounters();
} // namespace detail

/** The calling thread's counter block (lazily registered). */
inline HotCounters &
hot()
{
    HotCounters *p = detail::g_hot;
    return p ? *p : detail::registerThreadCounters();
}

/**
 * Process-wide merged totals: retired threads' aggregate plus every
 * live thread's current block. See the snapshot-consistency note in
 * the file comment.
 */
HotCounters mergedCounters();

} // namespace ticsim::perf

#endif // TICSIM_PERF_COUNTERS_HPP
