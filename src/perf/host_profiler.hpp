/**
 * @file
 * Wall-clock host profiler (DESIGN.md Section 11).
 *
 * RAII HostScope guards mark subsystem boundaries — simulator core,
 * checkpoint/restore machinery, analysis sinks, cache I/O, result
 * aggregation, report writing — and attribute host nanoseconds to the
 * innermost open zone, mirroring the simulated-side PhaseProfiler but
 * against the host's steady clock instead of modeled cycles.
 *
 * Accounting is *exclusive*: when scopes nest, time spent inside a
 * child zone is charged to the child only, so the per-zone totals of
 * one thread partition that thread's covered wall time and a report
 * can show "X ms of the macro run went to checkpoint commits" without
 * double counting.
 *
 * The profiler is globally gated and off by default. A disabled
 * HostScope is one relaxed atomic load and a branch — no clock read,
 * no thread_local write — which is what makes it safe to leave
 * compiled into per-checkpoint paths. clockReads() counts every
 * steady-clock query the profiler makes, so tests can pin the
 * disabled-mode overhead to exactly zero clock reads instead of
 * relying on flaky wall-clock assertions.
 *
 * Per-zone scope durations are recorded into support/stats.hpp
 * Distributions, so per-thread profiles merge with the same parallel
 * Welford combination the sweep aggregator uses and a merged profile
 * reports mean/p50/p95/p99 per zone exactly as if one thread had seen
 * every scope.
 */

#ifndef TICSIM_PERF_HOST_PROFILER_HPP
#define TICSIM_PERF_HOST_PROFILER_HPP

#include <cstdint>

#include "support/stats.hpp"

namespace ticsim::perf {

/** Host-side subsystem zones wall time is attributed to. */
enum class HostZone : std::uint8_t {
    SimCore = 0, ///< Board::run / sweep cell execution
    Checkpoint,  ///< checkpoint capture + commit (host cost)
    Restore,     ///< boot-time image restore + rollback
    Analysis,    ///< analysis sinks: snapshot capture, byte diffs
    CacheIo,     ///< result-cache lookup/store file I/O
    Aggregate,   ///< cross-seed Welford/histogram merging
    Report,      ///< JSON/trace report serialization
};

constexpr int kHostZoneCount = 7;

/** Stable snake_case name ("sim_core", "cache_io", ...). */
const char *hostZoneName(HostZone z);

/**
 * One thread's (or one merged) profile: per-zone scope-duration
 * distributions in nanoseconds, exclusive accounting.
 */
class HostProfiler
{
  public:
    /** Distribution of exclusive per-scope durations (ns) in @p z. */
    const Distribution &zone(HostZone z) const
    {
        return zones_[static_cast<int>(z)];
    }

    /** Scopes closed in @p z. */
    std::uint64_t scopeCount(HostZone z) const
    {
        return zones_[static_cast<int>(z)].count();
    }

    /** Exclusive ns attributed to @p z. */
    double zoneNs(HostZone z) const
    {
        return zones_[static_cast<int>(z)].sum();
    }

    /** Sum of every zone's exclusive time (ns). */
    double totalNs() const;

    /** Fold @p other in (parallel Welford merge per zone). */
    void merge(const HostProfiler &other);

    void reset();

    /** Record one closed scope (used by the scope machinery and by
     *  merge-identity tests). */
    void sample(HostZone z, double ns)
    {
        zones_[static_cast<int>(z)].sample(ns);
    }

  private:
    Distribution zones_[kHostZoneCount];
};

/** Globally enable/disable HostScope timing; returns previous state.
 *  Off by default: only ticsperf and profiler tests turn it on. */
bool setProfilerEnabled(bool on);

/** Whether HostScope guards currently take timestamps. */
bool profilerEnabled();

/** Steady-clock queries the profiler has made (process-wide, for the
 *  disabled-overhead-is-zero tests and the self-overhead metric). */
std::uint64_t clockReads();

/**
 * Process-wide merged profile: retired threads plus live threads.
 * Same quiescence caveat as perf::mergedCounters().
 */
HostProfiler mergedProfiler();

/**
 * RAII zone scope. Construction charges the elapsed slice to the
 * enclosing zone (if any) and opens @p z; destruction closes it and
 * samples the scope's accumulated *exclusive* nanoseconds. When the
 * profiler is disabled at construction, both ends are no-ops.
 *
 * Scopes are per-thread and must strictly nest (RAII guarantees it).
 * Depth beyond kMaxDepth is counted but not timed.
 */
class HostScope
{
  public:
    explicit HostScope(HostZone z);
    ~HostScope();

    HostScope(const HostScope &) = delete;
    HostScope &operator=(const HostScope &) = delete;

    static constexpr std::uint32_t kMaxDepth = 16;

  private:
    bool active_;
};

/** RAII profiler enablement for bench/test scopes. */
class ScopedProfilerEnable
{
  public:
    explicit ScopedProfilerEnable(bool on = true)
        : prev_(setProfilerEnabled(on))
    {
    }
    ~ScopedProfilerEnable() { setProfilerEnabled(prev_); }

    ScopedProfilerEnable(const ScopedProfilerEnable &) = delete;
    ScopedProfilerEnable &operator=(const ScopedProfilerEnable &) =
        delete;

  private:
    bool prev_;
};

} // namespace ticsim::perf

#endif // TICSIM_PERF_HOST_PROFILER_HPP
