/**
 * @file
 * Per-thread perf state, the cross-thread registry, and the HostScope
 * timing machinery. See counters.hpp / host_profiler.hpp for the
 * contracts.
 */

#include "perf/counters.hpp"
#include "perf/host_profiler.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <vector>

namespace ticsim::perf {

namespace {

/** Everything one thread accumulates, reached via one TLS pointer. */
struct ThreadState {
    HotCounters hot;
    HostProfiler prof;

    struct Frame {
        HostZone zone = HostZone::SimCore;
        double exclusiveNs = 0.0;
    };
    Frame stack[HostScope::kMaxDepth];
    std::uint32_t depth = 0;
    std::uint64_t lastStamp = 0;
};

/**
 * Process-wide roster of live thread states plus the folded totals of
 * threads that already exited. Leaked on purpose: worker-thread TLS
 * destructors must be able to flush into it at any point of process
 * shutdown without racing static destruction.
 */
struct Registry {
    std::mutex m;
    std::vector<ThreadState *> live;
    HotCounters retiredHot;
    HostProfiler retiredProf;
};

Registry &
registry()
{
    static Registry *r = new Registry; // intentionally leaked
    return *r;
}

thread_local ThreadState *g_state = nullptr;

/** Owns the thread's state for TLS-destructor flushing. */
struct ThreadHolder {
    ThreadState *state = nullptr;

    ~ThreadHolder()
    {
        if (!state)
            return;
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.m);
        r.retiredHot.add(state->hot);
        r.retiredProf.merge(state->prof);
        for (auto it = r.live.begin(); it != r.live.end(); ++it) {
            if (*it == state) {
                r.live.erase(it);
                break;
            }
        }
        delete state;
        g_state = nullptr;
        detail::g_hot = nullptr;
    }
};

ThreadState &
threadState()
{
    if (g_state)
        return *g_state;
    thread_local ThreadHolder holder;
    holder.state = new ThreadState;
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.m);
        r.live.push_back(holder.state);
    }
    g_state = holder.state;
    detail::g_hot = &holder.state->hot;
    return *holder.state;
}

std::atomic<bool> g_profEnabled{false};
std::atomic<std::uint64_t> g_clockReads{0};

std::uint64_t
clockNowNs()
{
    g_clockReads.fetch_add(1, std::memory_order_relaxed);
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

constexpr CounterField kCounterFields[] = {
    {"nv_loads", &HotCounters::nvLoads},
    {"nv_load_bytes", &HotCounters::nvLoadBytes},
    {"nv_stores", &HotCounters::nvStores},
    {"nv_store_bytes", &HotCounters::nvStoreBytes},
    {"nv_versioned", &HotCounters::nvVersioned},
    {"nv_versioned_bytes", &HotCounters::nvVersionedBytes},
    {"sink_dispatches", &HotCounters::sinkDispatches},
    {"sink_fast_null", &HotCounters::sinkFastNull},
    {"gate_dispatches", &HotCounters::gateDispatches},
    {"gate_fast_null", &HotCounters::gateFastNull},
    {"hook_dispatches", &HotCounters::hookDispatches},
    {"hook_fast_null", &HotCounters::hookFastNull},
    {"undo_records_sealed", &HotCounters::undoRecordsSealed},
    {"undo_bytes_sealed", &HotCounters::undoBytesSealed},
    {"undo_records_rolled_back", &HotCounters::undoRecordsRolledBack},
    {"undo_records_corrupt", &HotCounters::undoRecordsCorrupt},
    {"ckpt_commits", &HotCounters::ckptCommits},
    {"ckpt_bytes_moved", &HotCounters::ckptBytesMoved},
    {"ckpt_restores", &HotCounters::ckptRestores},
    {"ckpt_restore_bytes", &HotCounters::ckptRestoreBytes},
    {"event_pushes", &HotCounters::eventPushes},
    {"event_drops", &HotCounters::eventDrops},
    {"jobs_executed", &HotCounters::jobsExecuted},
    {"job_steals", &HotCounters::jobSteals},
};

} // namespace

// ---- counters ----------------------------------------------------------

namespace detail {

thread_local HotCounters *g_hot = nullptr;

HotCounters &
registerThreadCounters()
{
    return threadState().hot;
}

} // namespace detail

void
HotCounters::add(const HotCounters &o)
{
    int n = 0;
    const CounterField *fields = counterFields(n);
    for (int i = 0; i < n; ++i)
        this->*(fields[i].field) += o.*(fields[i].field);
}

HotCounters
HotCounters::delta(const HotCounters &before) const
{
    HotCounters d;
    int n = 0;
    const CounterField *fields = counterFields(n);
    for (int i = 0; i < n; ++i) {
        const std::uint64_t now = this->*(fields[i].field);
        const std::uint64_t then = before.*(fields[i].field);
        d.*(fields[i].field) = now >= then ? now - then : 0;
    }
    return d;
}

const CounterField *
counterFields(int &countOut)
{
    countOut = static_cast<int>(std::size(kCounterFields));
    return kCounterFields;
}

HotCounters
mergedCounters()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.m);
    HotCounters out = r.retiredHot;
    for (const ThreadState *st : r.live)
        out.add(st->hot);
    return out;
}

// ---- profiler ----------------------------------------------------------

const char *
hostZoneName(HostZone z)
{
    switch (z) {
      case HostZone::SimCore:    return "sim_core";
      case HostZone::Checkpoint: return "checkpoint";
      case HostZone::Restore:    return "restore";
      case HostZone::Analysis:   return "analysis";
      case HostZone::CacheIo:    return "cache_io";
      case HostZone::Aggregate:  return "aggregate";
      case HostZone::Report:     return "report";
    }
    return "?";
}

double
HostProfiler::totalNs() const
{
    double total = 0.0;
    for (const Distribution &d : zones_)
        total += d.sum();
    return total;
}

void
HostProfiler::merge(const HostProfiler &other)
{
    for (int z = 0; z < kHostZoneCount; ++z)
        zones_[z].merge(other.zones_[z]);
}

void
HostProfiler::reset()
{
    for (Distribution &d : zones_)
        d.reset();
}

bool
setProfilerEnabled(bool on)
{
    return g_profEnabled.exchange(on, std::memory_order_relaxed);
}

bool
profilerEnabled()
{
    return g_profEnabled.load(std::memory_order_relaxed);
}

std::uint64_t
clockReads()
{
    return g_clockReads.load(std::memory_order_relaxed);
}

HostProfiler
mergedProfiler()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.m);
    HostProfiler out = r.retiredProf;
    for (const ThreadState *st : r.live)
        out.merge(st->prof);
    return out;
}

HostScope::HostScope(HostZone z)
    : active_(profilerEnabled())
{
    if (!active_)
        return;
    ThreadState &st = threadState();
    const std::uint64_t now = clockNowNs();
    // Charge the slice since the last boundary to the enclosing zone:
    // exclusive accounting, like PhaseProfiler's innermost-scope-wins.
    if (st.depth > 0 && st.depth <= kMaxDepth) {
        st.stack[st.depth - 1].exclusiveNs +=
            static_cast<double>(now - st.lastStamp);
    }
    if (st.depth < kMaxDepth)
        st.stack[st.depth] = ThreadState::Frame{z, 0.0};
    ++st.depth; // beyond kMaxDepth: counted for symmetry, not timed
    st.lastStamp = now;
}

HostScope::~HostScope()
{
    if (!active_)
        return;
    ThreadState &st = threadState();
    const std::uint64_t now = clockNowNs();
    --st.depth;
    if (st.depth < kMaxDepth) {
        ThreadState::Frame &f = st.stack[st.depth];
        f.exclusiveNs += static_cast<double>(now - st.lastStamp);
        st.prof.sample(f.zone, f.exclusiveNs);
    }
    st.lastStamp = now;
}

} // namespace ticsim::perf
