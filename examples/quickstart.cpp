/**
 * @file
 * Quickstart: run an ordinary C function — pointers, recursion, global
 * state and all — on intermittently harvested power, unchanged except
 * for the instrumentation calls the TICS compiler passes would insert.
 *
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "board/board.hpp"
#include "board/runtime.hpp"
#include "mem/nv.hpp"
#include "tics/runtime.hpp"

using namespace ticsim;

namespace {

/** "Legacy" program state: non-volatile globals in FRAM. */
struct App {
    board::Board &b;
    tics::TicsRuntime &rt;
    mem::nv<std::uint64_t> checksum;
    mem::nv<std::uint32_t> rounds;

    App(board::Board &board, tics::TicsRuntime &runtime)
        : b(board), rt(runtime), checksum(board.nvram(), "app.checksum"),
          rounds(board.nvram(), "app.rounds")
    {
    }

    /** Plain recursive helper — the kind of code prior systems ban. */
    std::uint64_t
    sumDigits(std::uint64_t v)
    {
        board::FrameGuard fg(rt, 16);
        rt.triggerPoint();
        if (v < 10)
            return v;
        return (v % 10) + sumDigits(v / 10);
    }

    void
    main()
    {
        board::FrameGuard fg(rt, 24);
        for (std::uint32_t i = 0; i < 200; ++i) {
            rt.triggerPoint();
            std::uint64_t local = (i + 1) * 2654435761ULL;
            std::uint64_t *p = &local; // pointer into the stack
            rt.store(p, *p ^ (*p >> 13));
            // ticslint reports these read-modify-writes as WAR spans
            // (the Surbatovich condition holds over the text); the
            // undo log versions the segment on first write, so they
            // are safe under TICS. Expected findings, baselined.
            checksum = checksum.get() + sumDigits(*p);
            rounds += 1;
            b.charge(400); // the rest of the loop body's work
        }
    }
};

} // namespace

int
main()
{
    // A board powered through a reset pattern: 12 ms of power, then
    // 18 ms dark, forever. No single burst fits the whole program.
    board::BoardConfig cfg;
    board::Board board(
        cfg, std::make_unique<energy::PatternSupply>(30 * kNsPerMs, 0.4),
        std::make_unique<timekeeper::PerfectTimekeeper>());

    tics::TicsConfig tcfg;
    tcfg.segmentBytes = 128;
    tcfg.policy = tics::PolicyKind::Timer;
    tcfg.timerPeriod = 5 * kNsPerMs;
    tics::TicsRuntime rt(tcfg);

    App app(board, rt);
    const auto res = board.run(rt, [&] { app.main(); }, 60 * kNsPerSec);

    std::printf("completed:   %s\n", res.completed ? "yes" : "no");
    std::printf("power fails: %llu\n",
                static_cast<unsigned long long>(res.reboots));
    std::printf("checkpoints: %llu\n",
                static_cast<unsigned long long>(rt.checkpointsTotal()));
    std::printf("rounds:      %u (expected 200)\n", app.rounds.get());
    std::printf("checksum:    %llu\n",
                static_cast<unsigned long long>(app.checksum.get()));
    std::printf("\nThe program crossed %llu power failures and still "
                "finished with consistent state.\n",
                static_cast<unsigned long long>(res.reboots));
    return res.completed && app.rounds.get() == 200 ? 0 : 1;
}
