/**
 * @file
 * Porting "impossible" legacy code: in-place quicksort — deep data-
 * dependent recursion, pointer arithmetic into a FRAM array, swaps
 * through aliased pointers. Task-based systems cannot express this
 * and Chinchilla cannot compile it; under TICS it runs to a correct
 * sort across dozens of power failures with no structural changes.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "board/board.hpp"
#include "board/runtime.hpp"
#include "mem/nv.hpp"
#include "tics/runtime.hpp"

using namespace ticsim;

namespace {

constexpr std::uint32_t kN = 96;

struct App {
    board::Board &b;
    tics::TicsRuntime &rt;
    mem::nvArray<std::int32_t, kN> data;
    mem::nv<std::uint8_t> done;

    App(board::Board &board, tics::TicsRuntime &runtime)
        : b(board), rt(runtime), data(board.nvram(), "sort.data"),
          done(board.nvram(), "sort.done")
    {
        // Deterministic scrambled input. ticslint models raw() as a
        // read+write of sort.data, so this seeding loop shows up as a
        // WAR span; expected, baselined.
        std::uint32_t s = 0xBEEF;
        for (std::uint32_t i = 0; i < kN; ++i) {
            s = s * 1664525u + 1013904223u;
            data.raw()[i] = static_cast<std::int32_t>(s % 1000u);
        }
    }

    void
    quicksort(std::int32_t *lo, std::int32_t *hi)
    {
        board::FrameGuard fg(rt, 28);
        rt.triggerPoint();
        if (lo >= hi)
            return;
        std::int32_t *mid = lo + (hi - lo) / 2;
        const std::int32_t pivot = *mid;
        std::int32_t *i = lo;
        std::int32_t *j = hi;
        while (i <= j) {
            // Loop-latch trigger: the instrumentation pass inserts one
            // at every back edge, so the timer policy can checkpoint
            // inside long-running loops (without it, the first
            // partition of a large array outlives every power burst
            // and the program starves — try removing it).
            rt.triggerPoint();
            b.charge(12);
            // ticslint reports the two pointer scans below as
            // unsegmented loops: the bound heuristic cannot see that
            // the pivot terminates them, and the latch trigger above
            // sits outside their bodies. Expected, baselined.
            while (*i < pivot) {
                ++i;
                b.charge(4);
            }
            while (*j > pivot) {
                --j;
                b.charge(4);
            }
            if (i <= j) {
                // Pointer swaps into FRAM: instrumented stores.
                const std::int32_t t = *i;
                rt.store(i, *j);
                rt.store(j, t);
                ++i;
                --j;
            }
        }
        quicksort(lo, j);
        quicksort(i, hi);
    }

    void
    main()
    {
        board::FrameGuard fg(rt, 24);
        quicksort(data.raw(), data.raw() + kN - 1);
        done = 1;
    }
};

} // namespace

int
main()
{
    board::BoardConfig cfg;
    board::Board board(
        cfg, std::make_unique<energy::PatternSupply>(20 * kNsPerMs, 0.5),
        std::make_unique<timekeeper::PerfectTimekeeper>());
    tics::TicsConfig tcfg;
    tcfg.segmentBytes = 192;
    tcfg.segmentCount = 32;
    tcfg.policy = tics::PolicyKind::Timer;
    tcfg.timerPeriod = 5 * kNsPerMs;
    tics::TicsRuntime rt(tcfg);

    App app(board, rt);
    const auto res = board.run(rt, [&] { app.main(); }, 60 * kNsPerSec);

    std::vector<std::int32_t> result(app.data.raw(),
                                     app.data.raw() + kN);
    const bool sorted = std::is_sorted(result.begin(), result.end());

    std::printf("quicksort of %u FRAM ints: %s\n", kN,
                sorted && app.done.get() ? "SORTED" : "FAILED");
    std::printf("power failures survived: %llu\n",
                static_cast<unsigned long long>(res.reboots));
    std::printf("checkpoints taken:       %llu (bounded at one stack "
                "segment each)\n",
                static_cast<unsigned long long>(rt.checkpointsTotal()));
    std::printf("first/last elements:     %d ... %d\n", result.front(),
                result.back());
    return sorted ? 0 : 1;
}
