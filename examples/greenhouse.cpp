/**
 * @file
 * Greenhouse monitoring: a two-decade-old shape of TinyOS application
 * (timers, split-phase sensing, active messages) running first
 * unprotected and then under TICS, on the same intermittent supply —
 * the Table 1 experiment as a narrative.
 */

#include <cstdio>

#include "apps/ghm/ghm.hpp"
#include "runtimes/plainc.hpp"
#include "tics/runtime.hpp"

using namespace ticsim;

namespace {

apps::GhmOutcome
runOnce(bool withTics)
{
    board::BoardConfig cfg;
    cfg.seed = 2026;
    board::Board board(
        cfg,
        std::make_unique<energy::PatternSupply>(100 * kNsPerMs, 0.48),
        std::make_unique<timekeeper::PerfectTimekeeper>());

    apps::GhmParams p; // run until the budget expires

    if (withTics) {
        tics::TicsConfig tcfg;
        tcfg.segmentBytes = 128;
        tcfg.policy = tics::PolicyKind::Timer;
        tics::TicsRuntime rt(tcfg);
        apps::GhmTinyosApp app(board, rt, p);
        board.run(rt, [&] { app.main(); }, 2 * kNsPerSec);
        return app.outcome();
    }
    runtimes::PlainCRuntime rt;
    apps::GhmTinyosApp app(board, rt, p);
    board.run(rt, [&] { app.main(); }, 2 * kNsPerSec);
    return app.outcome();
}

void
report(const char *label, const apps::GhmOutcome &o)
{
    std::printf("%-18s moisture=%-4llu temp=%-4llu compute=%-4llu "
                "send=%-4llu -> %s\n",
                label, static_cast<unsigned long long>(o.senseMoisture),
                static_cast<unsigned long long>(o.senseTemp),
                static_cast<unsigned long long>(o.compute),
                static_cast<unsigned long long>(o.send),
                o.consistent ? "consistent" : "INCONSISTENT");
}

} // namespace

int
main()
{
    std::printf("Greenhouse monitoring on a 48%% duty reset pattern "
                "(2 s budget):\n\n");
    const auto plain = runOnce(false);
    report("TinyOS, bare:", plain);
    const auto tics = runOnce(true);
    report("TinyOS + TICS:", tics);
    std::printf("\nThe unprotected kernel loses its timers and task "
                "queue at every reset;\nTICS checkpoints the whole OS "
                "state (it lives on the instrumented stack)\nand the "
                "legacy application simply keeps running.\n");
    return tics.consistent ? 0 : 1;
}
