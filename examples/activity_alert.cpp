/**
 * @file
 * Time-sensitive activity recognition with TICS annotations on
 * RF-harvested power: stale sensor windows are discarded by @expires,
 * and activity-change alerts fire only inside their @timely deadline —
 * the paper's Fig. 8 behaviour, condensed.
 */

#include <cstdio>

#include "apps/ar/ar_timed.hpp"
#include "harness/experiment.hpp"

using namespace ticsim;

int
main()
{
    harness::SupplySpec spec;
    spec.setup = harness::PowerSetup::RfHarvested;
    spec.rfDistanceM = 2.9; // weak link: long outages
    spec.accelRegimePeriod = 120 * kNsPerMs;
    auto board = harness::makeBoard(spec, 99);

    tics::TicsConfig cfg;
    cfg.segmentBytes = 128;
    cfg.policy = tics::PolicyKind::Timer;
    tics::TicsRuntime rt(cfg);

    apps::ArTimedParams p;
    p.windows = 30;
    apps::ArTimedTicsApp app(*board, rt, p);
    const auto res = board->run(rt, [&] { app.main(); }, 60 * kNsPerSec);

    std::printf("windows sampled:    %u\n", p.windows);
    std::printf("power failures:     %llu\n",
                static_cast<unsigned long long>(res.reboots));
    std::printf("fresh -> processed: %llu\n",
                static_cast<unsigned long long>(app.processed()));
    std::printf("stale -> discarded: %llu  (outage outlived the 200 ms "
                "freshness budget)\n",
                static_cast<unsigned long long>(app.discarded()));
    std::printf("timely alerts sent: %llu\n",
                static_cast<unsigned long long>(app.alerts()));

    const auto &mon = board->monitor();
    const auto mis =
        mon.counts(board::ViolationKind::Misalignment).observed;
    const auto exp =
        mon.counts(board::ViolationKind::Expiration).observed;
    const auto tb =
        mon.counts(board::ViolationKind::TimelyBranch).observed;
    std::printf("time-consistency violations: %llu (all classes)\n",
                static_cast<unsigned long long>(mis + exp + tb));
    return res.completed && mis + exp + tb == 0 ? 0 : 1;
}
