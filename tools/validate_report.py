#!/usr/bin/env python3
"""Validate a TICSim --json run report against run_report.schema.json.

Usage: validate_report.py REPORT.json [REPORT2.json ...]

Uses the `jsonschema` package when importable; otherwise falls back to
a small structural validator covering the subset of JSON Schema the
run-report schema actually uses (type, const, enum, required,
additionalProperties, items, $ref into #/definitions, minimum,
minLength, pattern). Either way it also checks the semantic invariants
the schema cannot express: phases.total == result.cycles == sum of the
per-phase counts for every run; for grid documents that the cells are
sorted by job_id, that each cell's sim_ms matches its on_time_ns, that
the cache hit/miss split accounts for every cell (or is zeroed, as
under --stable / --no-cache), and that the aggregates partition the
cells; and for version-4 `prob` documents that static percentiles are
monotone, gate verdicts are consistent with --crossval and with the
failed-percentile field, and a feasible SLO answer actually meets its
own SLO; and for version-5 `perf` documents that counter values are
non-negative integers, every microbenchmark ran at least one
iteration, the host wall-time zones partition the macro total (the
synthetic 'other' zone closes the sum by construction), and the
reported throughput rates are consistent with their own numerators
and denominators; and for version-6 `lint` documents that every
cross-validation row's matched count is bounded by its dynamic count
(and confirmed by static), that coverage and fp_rate agree with the
counts they summarize, and that full_coverage holds exactly when
every row matched all of its dynamic findings; and for version-7 `mc`
documents that a pair claiming exhaustion was recorded consistently
and hit no frontier cut-off, that all_exhausted mirrors the pair
flags, that every violation references an explored pair, and that
each pair's confirmed_violations count equals the number of its
confirmed violation rows; and for version-8 `fleet` documents that the
completion flag, cell counts, per-shard accounts and the retry/crash
bookkeeping are mutually consistent, and that cells_total matches the
grid section the fleet ran.

Exit status: 0 when every report validates, 1 otherwise.
"""

import json
import os
import re
import sys

SCHEMA_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "run_report.schema.json")

PHASES = ("app", "checkpoint", "restore", "undo_log", "rollback",
          "timekeeper", "peripheral", "boot")


def _resolve(schema, root):
    while "$ref" in schema:
        ref = schema["$ref"]
        assert ref.startswith("#/"), f"only local refs supported: {ref}"
        node = root
        for part in ref[2:].split("/"):
            node = node[part]
        schema = node
    return schema


def _structural_validate(value, schema, root, path):
    """Minimal draft-07 subset validator; raises ValueError on mismatch."""
    schema = _resolve(schema, root)

    if "const" in schema:
        if value != schema["const"]:
            raise ValueError(f"{path}: expected {schema['const']!r}, "
                             f"got {value!r}")
        return

    if "enum" in schema:
        if value not in schema["enum"]:
            raise ValueError(f"{path}: {value!r} not one of "
                             f"{schema['enum']!r}")
        return

    t = schema.get("type")
    if t == "object":
        if not isinstance(value, dict):
            raise ValueError(f"{path}: expected object, got {type(value).__name__}")
        for req in schema.get("required", []):
            if req not in value:
                raise ValueError(f"{path}: missing required key '{req}'")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for k, v in value.items():
            if k in props:
                _structural_validate(v, props[k], root, f"{path}.{k}")
            elif isinstance(extra, dict):
                _structural_validate(v, extra, root, f"{path}.{k}")
            elif extra is False:
                raise ValueError(f"{path}: unexpected key '{k}'")
    elif t == "array":
        if not isinstance(value, list):
            raise ValueError(f"{path}: expected array, got {type(value).__name__}")
        if len(value) < schema.get("minItems", 0):
            raise ValueError(f"{path}: fewer than minItems entries")
        items = schema.get("items")
        if items:
            for i, v in enumerate(value):
                _structural_validate(v, items, root, f"{path}[{i}]")
    elif t == "string":
        if not isinstance(value, str):
            raise ValueError(f"{path}: expected string, got {type(value).__name__}")
        if len(value) < schema.get("minLength", 0):
            raise ValueError(f"{path}: string shorter than minLength")
        if "pattern" in schema and not re.search(schema["pattern"], value):
            raise ValueError(
                f"{path}: {value!r} does not match {schema['pattern']!r}")
    elif t == "integer":
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(f"{path}: expected integer, got {type(value).__name__}")
        if value < schema.get("minimum", float("-inf")):
            raise ValueError(f"{path}: {value} below minimum")
    elif t == "number":
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"{path}: expected number, got {type(value).__name__}")
        if value < schema.get("minimum", float("-inf")):
            raise ValueError(f"{path}: {value} below minimum")
    elif t == "boolean":
        if not isinstance(value, bool):
            raise ValueError(f"{path}: expected boolean, got {type(value).__name__}")
    elif t is not None:
        raise ValueError(f"{path}: unhandled schema type {t!r}")


def validate_schema(report, schema):
    try:
        import jsonschema
        jsonschema.validate(report, schema)
    except ImportError:
        _structural_validate(report, schema, schema, "$")


def validate_invariants(report):
    """Cross-field checks the schema language cannot state."""
    for i, run in enumerate(report.get("runs", [])):
        phases = run["phases"]
        total = phases["total"]
        summed = sum(phases[p] for p in PHASES)
        cycles = run["result"]["cycles"]
        if summed != total:
            raise ValueError(
                f"runs[{i}] ({run['label']}): phase sum {summed} != "
                f"phases.total {total}")
        if total != cycles:
            raise ValueError(
                f"runs[{i}] ({run['label']}): phases.total {total} != "
                f"result.cycles {cycles}")

    if "grid" in report and report["version"] < 3:
        raise ValueError("grid section requires version >= 3")
    if report["version"] == 3 and "grid" not in report:
        raise ValueError("version 3 document has no grid section")
    if "grid" in report:
        validate_grid(report["grid"])

    if "prob" in report and report["version"] < 4:
        raise ValueError("prob section requires version >= 4")
    if report["version"] == 4 and "prob" not in report:
        raise ValueError("version 4 document has no prob section")
    if "prob" in report:
        validate_prob(report["prob"])

    if "perf" in report and report["version"] < 5:
        raise ValueError("perf section requires version >= 5")
    if report["version"] == 5 and "perf" not in report:
        raise ValueError("version 5 document has no perf section")
    if "perf" in report:
        validate_perf(report["perf"])

    if "lint" in report and report["version"] < 6:
        raise ValueError("lint section requires version >= 6")
    if report["version"] == 6 and "lint" not in report:
        raise ValueError("version 6 document has no lint section")
    if "lint" in report:
        validate_lint(report["lint"])

    if "mc" in report and report["version"] < 7:
        raise ValueError("mc section requires version >= 7")
    if report["version"] == 7 and "mc" not in report:
        raise ValueError("version 7 document has no mc section")
    if "mc" in report:
        validate_mc(report["mc"])

    if "fleet" in report and report["version"] < 8:
        raise ValueError("fleet section requires version >= 8")
    if report["version"] == 8 and "fleet" not in report:
        raise ValueError("version 8 document has no fleet section")
    if "fleet" in report:
        validate_fleet(report["fleet"], report.get("grid"))


def validate_grid(grid):
    """The ticssweep section's determinism and accounting invariants."""
    cells = grid["cells"]

    # JobIds are fixed-width lowercase hex, so lexicographic order is
    # numeric order; the sorted sequence is what makes serial and
    # parallel sweeps byte-identical.
    ids = [c["job_id"] for c in cells]
    if ids != sorted(ids):
        raise ValueError("grid.cells not sorted by job_id")
    if len(set(ids)) != len(ids):
        raise ValueError("grid.cells contain duplicate job_ids")

    for i, cell in enumerate(cells):
        want = cell["result"]["on_time_ns"] / 1e6
        got = cell["result"]["sim_ms"]
        if abs(got - want) > max(1e-9, 1e-12 * want):
            raise ValueError(
                f"grid.cells[{i}] ({cell['job_id']}): sim_ms {got} != "
                f"on_time_ns/1e6 {want}")

    hits = grid["cache"]["hits"]
    misses = grid["cache"]["misses"]
    if (hits, misses) != (0, 0) and hits + misses != len(cells):
        raise ValueError(
            f"grid.cache hits {hits} + misses {misses} != "
            f"{len(cells)} cells (and not the zeroed stable form)")

    agg_cells = sum(a["cells"] for a in grid["aggregates"])
    if agg_cells != len(cells):
        raise ValueError(
            f"grid.aggregates cover {agg_cells} cells, grid has "
            f"{len(cells)}")


def validate_prob(prob):
    """The ticsverify --prob section's internal consistency."""
    crossval = prob["crossval"]
    for i, row in enumerate(prob["rows"]):
        who = f"prob.rows[{i}] ({row['app']}/{row['runtime']}/{row['env']})"
        st = row["static"]
        if not st["p50_ms"] <= st["p95_ms"] <= st["p99_ms"]:
            raise ValueError(f"{who}: static percentiles not monotone")
        sim = row["simulated"]
        if sim["completed"] > sim["cells"]:
            raise ValueError(f"{who}: more completions than cells")
        if not crossval:
            if row["gate"] != "static":
                raise ValueError(
                    f"{who}: gate '{row['gate']}' without --crossval")
            if sim["cells"] != 0:
                raise ValueError(
                    f"{who}: simulated cells without --crossval")
        elif row["gate"] == "static":
            raise ValueError(f"{who}: ungated row in a --crossval report")
        if row["within_tolerance"] and row["failed_percentile"]:
            raise ValueError(
                f"{who}: within tolerance yet failed "
                f"'{row['failed_percentile']}'")
        if not row["within_tolerance"] and not row["failed_percentile"]:
            raise ValueError(f"{who}: failed gate names no percentile")

    if "slo" in prob:
        slo = prob["slo"]
        if slo["feasible"]:
            if slo["capacitance_uf"] <= 0:
                raise ValueError(
                    "prob.slo: feasible answer without a capacitance")
            if slo["p_on_time"] < slo["slo"]:
                raise ValueError(
                    f"prob.slo: p_on_time {slo['p_on_time']} below the "
                    f"SLO {slo['slo']} it claims to meet")


def validate_perf(perf):
    """The ticsperf section's accounting invariants."""
    for name, value in perf["counters"].items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ValueError(
                f"perf.counters.{name}: {value!r} is not a "
                f"non-negative integer")

    for i, mb in enumerate(perf["microbench"]):
        who = f"perf.microbench[{i}] ({mb['name']})"
        if mb["iters"] <= 0:
            raise ValueError(f"{who}: ran {mb['iters']} iterations")
        if mb["ns_per_op"] < 0 or mb["ops_per_sec"] < 0:
            raise ValueError(f"{who}: negative rate")
        # ns_per_op and ops_per_sec are reciprocals (up to ns<->s).
        if mb["ns_per_op"] > 0:
            want = 1e9 / mb["ns_per_op"]
            got = mb["ops_per_sec"]
            if abs(got - want) > 1e-6 * want:
                raise ValueError(
                    f"{who}: ops_per_sec {got} != 1e9/ns_per_op {want}")

    host = perf["host_time"]
    zone_sum = sum(z["ms"] for z in host["zones"])
    total = host["total_ms"]
    # The synthetic 'other' zone closes the partition exactly, except
    # when named zones overshoot the wall total (timer granularity) and
    # 'other' clamps at zero; allow the sum to exceed total slightly.
    if zone_sum < total - max(1e-6, 1e-9 * total):
        raise ValueError(
            f"perf.host_time: zones sum to {zone_sum} ms, short of "
            f"total_ms {total}")
    names = [z["name"] for z in host["zones"]]
    if len(set(names)) != len(names):
        raise ValueError("perf.host_time: duplicate zone names")

    macro = perf["macro"]
    if macro["host_ms"] > 0:
        secs = macro["host_ms"] / 1e3
        checks = (
            ("cells_per_sec", macro["cells"] / secs),
            ("sim_cycles_per_host_sec", macro["sim_cycles"] / secs),
            ("sim_seconds_per_host_sec", macro["sim_ns"] / 1e9 / secs),
        )
        for key, want in checks:
            got = macro[key]
            if abs(got - want) > max(1e-9, 1e-6 * want):
                raise ValueError(
                    f"perf.macro.{key}: {got} inconsistent with "
                    f"recomputed {want}")


def validate_lint(lint):
    """The ticslint section's coverage arithmetic."""
    if lint["files_analyzed"] == 0:
        raise ValueError("lint: zero files analyzed")
    if len(lint["findings"]) > 0 and lint["functions_analyzed"] == 0:
        raise ValueError("lint: findings without any parsed function")

    crossval = lint["crossval"]
    rows = lint.get("rows", [])
    if crossval and "full_coverage" not in lint:
        raise ValueError("lint: crossval report without full_coverage")
    if not crossval and rows:
        raise ValueError("lint: rows present without --crossval")

    all_matched = True
    for i, row in enumerate(rows):
        who = f"lint.rows[{i}] ({row['app']}/{row['runtime']})"
        if row["matched_findings"] > row["dynamic_findings"]:
            raise ValueError(f"{who}: matched more than dynamic")
        if row["confirmed_static"] > row["static_findings"]:
            raise ValueError(f"{who}: confirmed more than static")
        want_cov = (1.0 if row["dynamic_findings"] == 0 else
                    row["matched_findings"] / row["dynamic_findings"])
        if abs(row["coverage"] - want_cov) > 1e-9:
            raise ValueError(
                f"{who}: coverage {row['coverage']} != recomputed "
                f"{want_cov}")
        want_fp = (0.0 if row["static_findings"] == 0 else
                   (row["static_findings"] - row["confirmed_static"]) /
                   row["static_findings"])
        if abs(row["fp_rate"] - want_fp) > 1e-9:
            raise ValueError(
                f"{who}: fp_rate {row['fp_rate']} != recomputed "
                f"{want_fp}")
        if row["matched_findings"] != row["dynamic_findings"]:
            all_matched = False
    if crossval and lint["full_coverage"] != all_matched:
        raise ValueError(
            f"lint: full_coverage {lint['full_coverage']} inconsistent "
            f"with the rows (all matched: {all_matched})")


def validate_mc(mc):
    """The ticsmc section's exhaustion and confirmation bookkeeping."""
    pairs = {}
    for i, p in enumerate(mc["pairs"]):
        who = f"mc.pairs[{i}] ({p['app']}/{p['runtime']})"
        key = (p["app"], p["runtime"])
        if key in pairs:
            raise ValueError(f"{who}: duplicate pair entry")
        pairs[key] = p
        if p["exhausted"]:
            if not p["recording_consistent"]:
                raise ValueError(
                    f"{who}: exhausted yet the recording pass diverged "
                    f"from the reference")
            if p["frontier_cutoffs"] != 0:
                raise ValueError(
                    f"{who}: exhausted with {p['frontier_cutoffs']} "
                    f"frontier cut-offs")
        if p["decision_points"] == 0 and p["branches_taken"] != 0:
            raise ValueError(
                f"{who}: {p['branches_taken']} branches without any "
                f"decision point")
        if p["states_explored"] < p["branches_taken"]:
            # Every branch the walk takes runs to a classified leaf, so
            # leaves can only exceed branches (never trail them).
            raise ValueError(
                f"{who}: {p['states_explored']} states from "
                f"{p['branches_taken']} branches")

    want_all = all(p["exhausted"] for p in mc["pairs"])
    if mc["all_exhausted"] != want_all:
        raise ValueError(
            f"mc.all_exhausted {mc['all_exhausted']} inconsistent with "
            f"the pair flags (all exhausted: {want_all})")

    confirmed = {k: 0 for k in pairs}
    for i, v in enumerate(mc["violations"]):
        key = (v["app"], v["runtime"])
        if key not in pairs:
            raise ValueError(
                f"mc.violations[{i}]: {v['app']}/{v['runtime']} was "
                f"never explored")
        if v["confirmed"]:
            confirmed[key] += 1
    for key, p in pairs.items():
        if p["confirmed_violations"] != confirmed[key]:
            raise ValueError(
                f"mc pair {key[0]}/{key[1]}: confirmed_violations "
                f"{p['confirmed_violations']} != {confirmed[key]} "
                f"confirmed violation rows")


def validate_fleet(fleet, grid):
    """The ticsfleet section's orchestration bookkeeping."""
    total = fleet["cells_total"]
    done = fleet["cells_completed"]
    if done > total:
        raise ValueError(f"fleet: {done} cells completed of {total}")
    if fleet["complete"] != (done == total):
        raise ValueError(
            f"fleet: complete {fleet['complete']} inconsistent with "
            f"{done}/{total} cells")
    if grid is not None and total != len(grid["cells"]):
        raise ValueError(
            f"fleet: cells_total {total} != {len(grid['cells'])} grid "
            f"cells in the same document")

    workers = fleet["workers"]
    shards = [w["shard"] for w in workers]
    if shards != sorted(set(shards)):
        raise ValueError("fleet.workers not one entry per shard, "
                         "sorted by shard index")
    if sum(w["spawns"] for w in workers) != fleet["workers_spawned"]:
        raise ValueError(
            f"fleet: workers_spawned {fleet['workers_spawned']} != "
            f"sum of per-shard spawns")
    if sum(w["completed"] for w in workers) != done:
        raise ValueError(
            f"fleet: cells_completed {done} != sum of per-shard "
            f"completed counts")
    for w in workers:
        if w["completed"] > w["assigned"]:
            raise ValueError(
                f"fleet shard {w['shard']}: completed {w['completed']} "
                f"> assigned {w['assigned']}")
    # Every retry respawns a shard that crashed or timed out first.
    if fleet["retries"] > fleet["crashes"] + fleet["timeouts"]:
        raise ValueError(
            f"fleet: {fleet['retries']} retries exceed "
            f"{fleet['crashes']} crashes + {fleet['timeouts']} "
            f"timeouts")
    if fleet["envs"] != sorted(set(fleet["envs"])):
        raise ValueError("fleet.envs not sorted and distinct")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(SCHEMA_PATH) as f:
        schema = json.load(f)
    ok = True
    for path in argv[1:]:
        try:
            with open(path) as f:
                report = json.load(f)
            validate_schema(report, schema)
            validate_invariants(report)
            nruns = len(report["runs"])
            print(f"{path}: OK ({report['bench']}, {nruns} runs)")
        except Exception as e:  # noqa: BLE001 — report and keep going
            print(f"{path}: FAIL: {e}", file=sys.stderr)
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
