#!/usr/bin/env python3
"""Compare two ticsperf BENCH_*.json trajectory points.

Usage: perf_diff.py BASELINE.json CANDIDATE.json
           [--tol-timing PCT] [--tol-counters PCT] [--strict]

Both inputs are run_report v5 documents (ticsperf --json). The two
halves of the perf section are held to different standards:

 * Counters are macro-phase deltas taken under --jobs 1 scheduling, so
   on identical code they are exactly reproducible; any drift means
   the instrumented hot paths executed differently. Default tolerance
   0% (--tol-counters relaxes it, in percent).

 * Timing metrics (microbench ns/op, macro throughput, host wall-time
   zones) legitimately vary with load and hardware, so they get a
   generous relative tolerance (--tol-timing, default 25%; the
   file-I/O-bound microbenches in TIMING_TOL_MULT get a per-metric
   multiple of it). Only changes in the "worse" direction count:
   ns/op up, throughput down. Improvements are reported but never
   fail the diff.

Zone wall-times below 1 ms in both documents are skipped: at that
scale timer granularity dominates and percentage noise is meaningless.
Microbenches present in only one document are reported and, under
--strict, fail the diff.

Exit status: 0 when within tolerance, 1 on any regression, 2 on usage
or input errors. Intended for the CI perf-smoke job (advisory) and
for eyeballing the committed BENCH trajectory locally.
"""

import argparse
import json
import sys


# Per-metric tolerance multipliers on --tol-timing. File-I/O-bound
# microbenches swing far more run-to-run than the CPU-bound ones
# (page cache, journal flushes), so they get proportionally more rope
# before the diff calls regression.
TIMING_TOL_MULT = {
    "result_cache_roundtrip": 4.0,
    "ckpt_commit_recover": 2.0,
}


class Row:
    __slots__ = ("group", "metric", "base", "cand", "verdict")

    def __init__(self, group, metric, base, cand, verdict):
        self.group = group
        self.metric = metric
        self.base = base
        self.cand = cand
        self.verdict = verdict


def load_perf(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"perf_diff: cannot read {path}: {e}")
    if "perf" not in doc:
        raise SystemExit(
            f"perf_diff: {path} has no perf section (not a ticsperf "
            f"report? version {doc.get('version')})")
    return doc["perf"]


def rel_change(base, cand):
    """Signed relative change, or None when the baseline is zero."""
    if base == 0:
        return None if cand == 0 else float("inf")
    return (cand - base) / base


def fmt_value(v):
    if isinstance(v, int):
        return f"{v:,}"
    if v == 0:
        return "0"
    if abs(v) >= 1000:
        return f"{v:,.1f}"
    return f"{v:.3f}"


def fmt_delta(base, cand):
    r = rel_change(base, cand)
    if r is None:
        return "="
    if r == float("inf"):
        return "new!=0"
    return f"{100.0 * r:+.1f}%"


def judge(base, cand, tol, lower_is_better):
    """'ok' | 'better' | 'REGRESSED' for a timing metric."""
    r = rel_change(base, cand)
    if r is None:
        return "ok"
    worse = r if lower_is_better else -r
    if worse > tol:
        return "REGRESSED"
    if worse < -tol:
        return "better"
    return "ok"


def diff_counters(base, cand, tol, rows):
    bad = 0
    names = sorted(set(base) | set(cand))
    for name in names:
        if name not in base or name not in cand:
            rows.append(Row("counter", name, base.get(name, "-"),
                            cand.get(name, "-"), "MISSING"))
            bad += 1
            continue
        b, c = base[name], cand[name]
        r = rel_change(b, c)
        within = (r is None or
                  (r != float("inf") and abs(r) <= tol) or
                  (r == float("inf") and tol == float("inf")))
        if b == c:
            continue  # identical counters stay out of the table
        verdict = "drift(ok)" if within else "DRIFT"
        if not within:
            bad += 1
        rows.append(Row("counter", name, b, c, verdict))
    return bad


def diff_microbench(base, cand, tol, strict, rows):
    bad = 0
    bmap = {m["name"]: m for m in base}
    cmap = {m["name"]: m for m in cand}
    for name in sorted(set(bmap) | set(cmap)):
        if name not in bmap or name not in cmap:
            rows.append(Row("microbench", name + " ns/op",
                            bmap.get(name, {}).get("ns_per_op", "-"),
                            cmap.get(name, {}).get("ns_per_op", "-"),
                            "MISSING"))
            if strict:
                bad += 1
            continue
        b = bmap[name]["ns_per_op"]
        c = cmap[name]["ns_per_op"]
        verdict = judge(b, c, tol * TIMING_TOL_MULT.get(name, 1.0),
                        lower_is_better=True)
        if verdict == "REGRESSED":
            bad += 1
        rows.append(Row("microbench", name + " ns/op", b, c, verdict))
    return bad


def diff_macro(base, cand, tol, rows):
    bad = 0
    for key in ("cells_per_sec", "sim_cycles_per_host_sec",
                "sim_seconds_per_host_sec"):
        b, c = base[key], cand[key]
        verdict = judge(b, c, tol, lower_is_better=False)
        if verdict == "REGRESSED":
            bad += 1
        rows.append(Row("macro", key, b, c, verdict))
    return bad


def diff_zones(base, cand, tol, rows):
    bad = 0
    bmap = {z["name"]: z["ms"] for z in base["zones"]}
    cmap = {z["name"]: z["ms"] for z in cand["zones"]}
    for name in sorted(set(bmap) | set(cmap)):
        b = bmap.get(name, 0.0)
        c = cmap.get(name, 0.0)
        if b < 1.0 and c < 1.0:
            continue  # below timer granularity; percentages meaningless
        verdict = judge(b, c, tol, lower_is_better=True)
        if verdict == "REGRESSED":
            bad += 1
        rows.append(Row("host_time", name + " ms", b, c, verdict))
    return bad


def print_table(rows):
    if not rows:
        print("perf_diff: no differences to report")
        return
    heads = ("group", "metric", "baseline", "candidate", "delta", "verdict")
    table = [heads]
    for r in rows:
        base = r.base if isinstance(r.base, str) else fmt_value(r.base)
        cand = r.cand if isinstance(r.cand, str) else fmt_value(r.cand)
        delta = ("-" if isinstance(r.base, str) or isinstance(r.cand, str)
                 else fmt_delta(r.base, r.cand))
        table.append((r.group, r.metric, base, cand, delta, r.verdict))
    widths = [max(len(row[i]) for row in table) for i in range(len(heads))]
    for n, row in enumerate(table):
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths))
              .rstrip())
        if n == 0:
            print("  ".join("-" * w for w in widths))


def main(argv):
    ap = argparse.ArgumentParser(
        prog="perf_diff.py",
        description="Compare two ticsperf BENCH_*.json trajectory points")
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--tol-timing", type=float, default=25.0,
                    metavar="PCT",
                    help="relative tolerance for timing metrics "
                         "(percent, default 25)")
    ap.add_argument("--tol-counters", type=float, default=0.0,
                    metavar="PCT",
                    help="relative tolerance for counter deltas "
                         "(percent, default 0 = exact)")
    ap.add_argument("--strict", action="store_true",
                    help="microbenches present in only one document "
                         "fail the diff")
    try:
        args = ap.parse_args(argv[1:])
    except SystemExit:
        return 2

    base = load_perf(args.baseline)
    cand = load_perf(args.candidate)

    if base.get("quick") != cand.get("quick"):
        print("perf_diff: note: comparing a --quick report against a "
              "full one; microbench iteration counts differ but rates "
              "remain comparable", file=sys.stderr)
    for doc, name in ((base, args.baseline), (cand, args.candidate)):
        if not doc["build"]["optimized"]:
            print(f"perf_diff: warning: {name} was produced by an "
                  f"unoptimized build ({doc['build']['type']}); its "
                  f"timing numbers are not meaningful", file=sys.stderr)

    tol_t = args.tol_timing / 100.0
    tol_c = args.tol_counters / 100.0

    rows = []
    bad = 0
    bad += diff_counters(base["counters"], cand["counters"], tol_c, rows)
    bad += diff_microbench(base["microbench"], cand["microbench"],
                           tol_t, args.strict, rows)
    bad += diff_macro(base["macro"], cand["macro"], tol_t, rows)
    bad += diff_zones(base["host_time"], cand["host_time"], tol_t, rows)

    print(f"perf_diff: {args.baseline} (bench_version "
          f"{base['bench_version']}) vs {args.candidate} (bench_version "
          f"{cand['bench_version']})")
    print_table(rows)
    regressed = [r for r in rows if r.verdict in ("REGRESSED", "DRIFT")
                 or (r.verdict == "MISSING" and
                     (r.group == "counter" or args.strict))]
    if bad:
        print(f"perf_diff: {bad} metric(s) regressed beyond tolerance "
              f"(timing ±{args.tol_timing:.0f}%, counters "
              f"±{args.tol_counters:.0f}%)", file=sys.stderr)
        for r in regressed:
            print(f"perf_diff:   {r.group}: {r.metric}", file=sys.stderr)
        return 1
    print(f"perf_diff: OK — within tolerance (timing "
          f"±{args.tol_timing:.0f}%, counters ±{args.tol_counters:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
