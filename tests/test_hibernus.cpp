/**
 * @file
 * Tests of the Hibernus-like reactive baseline: exactly one snapshot
 * per power cycle at the Vsave threshold, correct resume, inertness on
 * non-observable supplies, and the reserve-energy failure mode (Vsave
 * too close to brown-out for a full-state snapshot).
 */

#include <gtest/gtest.h>

#include "apps/bc/bc_legacy.hpp"
#include "board/board.hpp"
#include "mem/nv.hpp"
#include "runtimes/hibernus.hpp"

using namespace ticsim;

namespace {

std::unique_ptr<board::Board>
weakRfBoard(std::uint64_t seed = 5)
{
    energy::HarvestingSupply::Config cfg;
    board::BoardConfig bcfg;
    bcfg.seed = seed;
    return std::make_unique<board::Board>(
        bcfg,
        std::make_unique<energy::HarvestingSupply>(
            cfg, std::make_unique<energy::ConstantHarvester>(0.25e-3)),
        std::make_unique<timekeeper::PerfectTimekeeper>());
}

} // namespace

TEST(Hibernus, OneSnapshotPerPowerCycleAndCorrectResult)
{
    auto b = weakRfBoard();
    runtimes::HibernusRuntime rt(2.1);
    apps::BcParams p;
    p.iterations = 300;
    apps::BcLegacyApp app(*b, rt, p);
    const auto res = b->run(rt, [&] { app.main(); }, 60 * kNsPerSec);
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(app.verify());
    EXPECT_GE(res.reboots, 1u);
    // One hibernation per completed power cycle (+/- the final cycle).
    const auto hibs = rt.stats().counterValue("hibernations");
    EXPECT_GE(hibs, res.reboots);
    EXPECT_LE(hibs, res.reboots + 1);
    EXPECT_EQ(rt.stats().counterValue("restores"), res.reboots);
}

TEST(Hibernus, NoCheckpointsWhileEnergyIsPlentiful)
{
    // Strong harvest: the voltage never sags to Vsave.
    energy::HarvestingSupply::Config cfg;
    board::BoardConfig bcfg;
    auto b = std::make_unique<board::Board>(
        bcfg,
        std::make_unique<energy::HarvestingSupply>(
            cfg, std::make_unique<energy::ConstantHarvester>(5e-3)),
        std::make_unique<timekeeper::PerfectTimekeeper>());
    runtimes::HibernusRuntime rt(2.1);
    apps::BcLegacyApp app(*b, rt);
    const auto res = b->run(rt, [&] { app.main(); }, 60 * kNsPerSec);
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(app.verify());
    EXPECT_EQ(rt.checkpointsTotal(), 0u); // zero overhead when charged
}

TEST(Hibernus, InertWithoutObservableVoltage)
{
    auto b = std::make_unique<board::Board>(
        board::BoardConfig{},
        std::make_unique<energy::PatternSupply>(50 * kNsPerMs, 0.9),
        std::make_unique<timekeeper::PerfectTimekeeper>());
    runtimes::HibernusRuntime rt(2.1);
    apps::BcParams p;
    p.iterations = 16;
    apps::BcLegacyApp app(*b, rt, p);
    const auto res = b->run(rt, [&] { app.main(); }, 60 * kNsPerSec);
    // Pattern supplies expose no voltage: Hibernus never saves; the
    // run completes only if it fits one power window (here it does).
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(rt.checkpointsTotal(), 0u);
}

TEST(Hibernus, InsufficientReserveStarves)
{
    // Vsave barely above brown-out: the full-state snapshot (stack +
    // tracked globals) cannot finish on the remaining charge, so the
    // system keeps dying mid-save and never makes durable progress —
    // the unbounded-checkpoint hazard TICS's bounded segments remove.
    auto b = weakRfBoard();
    runtimes::HibernusRuntime rt(1.84);
    mem::nvArray<std::uint32_t, 1500> big(b->nvram(), "big");
    rt.trackGlobals(big.raw(), 1500 * 4);
    mem::nv<std::uint32_t> done(b->nvram(), "done");
    rt.trackGlobals(done.raw(), 4);
    const auto res = b->run(
        rt,
        [&] {
            board::FrameGuard fg(rt, 24);
            // Progress lives in a *volatile* loop counter: without a
            // committed snapshot, every reboot starts over.
            for (std::uint32_t k = 0; k < 1500; ++k) {
                rt.triggerPoint();
                big.set(k, k);
                b->charge(120);
            }
            done = 1;
        },
        30 * kNsPerSec);
    EXPECT_FALSE(res.completed);
    EXPECT_EQ(done.get(), 0u);
    // Hibernation was attempted every cycle, but the 0.7 uJ reserve
    // cannot cover a ~9.6 ms full-state snapshot: nothing ever
    // committed and nothing was ever restored.
    EXPECT_GT(rt.stats().counterValue("hibernations"), 2u);
    EXPECT_EQ(rt.stats().counterValue("checkpoints"), 0u);
    EXPECT_EQ(rt.stats().counterValue("restores"), 0u);
}
