/**
 * @file
 * Tests for the static verification subsystem (ticsverify): energy
 * budget arithmetic, the three analyses on hand-built models, program
 * model recovery from calibration runs, the full-matrix verdict split,
 * and the cross-validation soundness gate against the dynamic checker.
 */

#include <gtest/gtest.h>

#include <memory>

#include "analysis/war_detector.hpp"
#include "apps/bc/bc_legacy.hpp"
#include "harness/experiment.hpp"
#include "runtimes/plainc.hpp"
#include "tics/runtime.hpp"
#include "verify/crossval.hpp"
#include "verify/demo_app.hpp"
#include "verify/model.hpp"
#include "verify/verifier.hpp"

using namespace ticsim;
using namespace ticsim::verify;

namespace {

const device::CostModel kCosts{};

tics::TicsConfig
testTicsConfig()
{
    tics::TicsConfig c;
    c.segmentBytes = 256;
    c.policy = tics::PolicyKind::Timer;
    c.timerPeriod = 5 * kNsPerMs;
    return c;
}

/** A minimal one-region model for the synthetic analysis tests. */
ProgramModel
syntheticModel(Cycles regionCycles)
{
    ProgramModel m;
    m.app = "synthetic";
    m.runtime = "test";
    m.calibrated = true;
    RegionNode r;
    r.index = 0;
    r.anchor = "region#0";
    r.cycles = regionCycles;
    m.regions.push_back(std::move(r));
    return m;
}

} // namespace

// ---- energy budgets --------------------------------------------------------

TEST(EnergyBudget, PatternBudgetCycleArithmetic)
{
    const auto b = patternBudget(30 * kNsPerMs, 0.6, kCosts, 300);
    EXPECT_TRUE(b.bounded);
    // 18 ms on at 1 MHz.
    EXPECT_EQ(b.windowCycles, 18000u);
    EXPECT_EQ(b.maxOutageNs, 12 * kNsPerMs);
    EXPECT_EQ(b.maxOutages, 300u);
    EXPECT_EQ(b.worstOutageAccumulationNs(), 300 * 12 * kNsPerMs);
}

TEST(EnergyBudget, CapacitorBudgetFromUsableCharge)
{
    // E = C/2 (3.0^2 - 1.8^2) = C/2 * 5.76; per-cycle 0.75 nJ @ 1 MHz.
    const auto big = capacitorBudget(10e-6, 3.0, 1.8,
                                     3600 * kNsPerSec, kCosts, 300);
    EXPECT_EQ(big.windowCycles, 38400u);
    const auto small = capacitorBudget(1e-6, 3.0, 1.8,
                                       3600 * kNsPerSec, kCosts, 300);
    EXPECT_EQ(small.windowCycles, 3840u);
}

TEST(EnergyBudget, UnboundedBudgetDisablesAllAnalyses)
{
    auto m = syntheticModel(1'000'000'000);
    m.warLatent.push_back({"glob", 0, 4, 0});
    const auto findings = analyzeAll(m, unboundedBudget(), kCosts);
    EXPECT_TRUE(findings.empty());
}

// ---- energy-progress on synthetic models -----------------------------------

TEST(EnergyProgress, RegionWithinOneChargeIsClean)
{
    const auto m = syntheticModel(10000);
    const auto b = patternBudget(30 * kNsPerMs, 0.6, kCosts, 300);
    // re-entry = boot 150 + restore 273 (+0 image, no versioning).
    EXPECT_EQ(reentryCycles(m, m.regions[0], kCosts), 423u);
    EXPECT_TRUE(analyzeEnergyProgress(m, b, kCosts).empty());
}

TEST(EnergyProgress, OversizedRegionIsStaticallyNonTerminating)
{
    const auto m = syntheticModel(20000); // 20423 > 18000
    const auto b = patternBudget(30 * kNsPerMs, 0.6, kCosts, 300);
    const auto findings = analyzeEnergyProgress(m, b, kCosts);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].analysis, "energy-progress");
    EXPECT_EQ(findings[0].anchor, "region#0");
    EXPECT_NE(findings[0].detail.find("never"), std::string::npos);
}

TEST(EnergyProgress, ReentryCountsRollbackOfVersionedTraffic)
{
    auto m = syntheticModel(10000);
    m.regions[0].versionedEntries = 10;
    m.regions[0].versionedBytes = 100;
    // + 10*230 rollback + 100*1.0 per-byte + restore image of the
    // versioned set (273 + 1.53*100 = 426).
    EXPECT_EQ(reentryCycles(m, m.regions[0], kCosts),
              150u + 426u + 2300u + 100u);
}

// ---- timeliness on synthetic models ----------------------------------------

namespace {

SiteEvent
site(mem::SideEventKind kind, const char *id, std::uint64_t u0,
     Cycles at)
{
    SiteEvent s;
    s.kind = kind;
    s.id = id;
    s.u0 = u0;
    s.atCycle = at;
    return s;
}

} // namespace

TEST(Timeliness, CrossRegionUnguardedUseIsFlagged)
{
    auto m = syntheticModel(1000);
    RegionNode r2;
    r2.index = 1;
    r2.anchor = "region#1";
    m.regions.push_back(std::move(r2));
    const TimeNs life = 15 * kNsPerMs;
    m.regions[0].sites.push_back(
        site(mem::SideEventKind::TimedAssign, "x", life, 100));
    m.regions[1].sites.push_back(
        site(mem::SideEventKind::TimedUse, "x", life, 9000));
    const auto b = patternBudget(30 * kNsPerMs, 0.6, kCosts, 300);
    const auto findings = analyzeTimeliness(m, b, kCosts);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].subject, "x");
    EXPECT_EQ(findings[0].regionIndex, 1u);
}

TEST(Timeliness, FreshnessCheckInSameRegionGuardsTheUse)
{
    auto m = syntheticModel(1000);
    RegionNode r2;
    r2.index = 1;
    r2.anchor = "region#1";
    m.regions.push_back(std::move(r2));
    const TimeNs life = 15 * kNsPerMs;
    m.regions[0].sites.push_back(
        site(mem::SideEventKind::TimedAssign, "x", life, 100));
    m.regions[1].sites.push_back(
        site(mem::SideEventKind::TimedCheck, "x", life, 8000));
    m.regions[1].sites.push_back(
        site(mem::SideEventKind::TimedUse, "x", life, 9000));
    const auto b = patternBudget(30 * kNsPerMs, 0.6, kCosts, 300);
    EXPECT_TRUE(analyzeTimeliness(m, b, kCosts).empty());
}

TEST(Timeliness, SameRegionAssignAndUseCannotGoStale)
{
    // Re-execution of the region re-assigns before the use, so the
    // pair is not flaggable no matter how long the outages are.
    auto m = syntheticModel(1000);
    const TimeNs life = 1 * kNsPerMs;
    m.regions[0].sites.push_back(
        site(mem::SideEventKind::TimedAssign, "x", life, 100));
    m.regions[0].sites.push_back(
        site(mem::SideEventKind::TimedUse, "x", life, 900));
    const auto b = patternBudget(30 * kNsPerMs, 0.6, kCosts, 300);
    EXPECT_TRUE(analyzeTimeliness(m, b, kCosts).empty());
}

// ---- io-idempotency on synthetic models ------------------------------------

TEST(IoIdempotency, UnguardedSendIsFlaggedGuardedDrainIsNot)
{
    auto m = syntheticModel(1000);
    auto unguarded =
        site(mem::SideEventKind::PeripheralSend, "radio", 8, 500);
    auto guarded =
        site(mem::SideEventKind::PeripheralSend, "radio2", 8, 600);
    guarded.inIoGuard = true;
    m.regions[0].sites.push_back(unguarded);
    m.regions[0].sites.push_back(guarded);
    const auto b = patternBudget(30 * kNsPerMs, 0.6, kCosts, 300);
    const auto findings = analyzeIoIdempotency(m, b);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].subject, "radio");
}

// ---- model recovery --------------------------------------------------------

TEST(ModelRecovery, BcUnderTicsYieldsSegmentedCleanModel)
{
    auto board = harness::makeBoard(harness::continuousSpec(), 11);
    auto rt = std::make_unique<tics::TicsRuntime>(testTicsConfig());
    apps::BcParams p;
    auto app = std::make_unique<apps::BcLegacyApp>(*board, *rt, p);
    ModelRecorder rec(*board);
    const auto res =
        board->run(*rt, [&] { app->main(); }, 600 * kNsPerSec);
    rec.finalize();

    EXPECT_TRUE(res.completed);
    EXPECT_TRUE(app->verify());
    const auto &m = rec.model();
    EXPECT_GT(m.regions.size(), 2u); // periodic checkpoints cut regions
    EXPECT_GT(m.totalCycles, 0u);
    // TICS versions writes through its undo log: no latent WAR ranges.
    const auto war = analysis::WarHazardDetector(board->nvram())
                         .analyze(rec.intervalView());
    EXPECT_TRUE(war.clean());
}

TEST(ModelRecovery, BcUnderPlainCExposesLatentWar)
{
    // Regression for the verifier pipeline: the interval view of a
    // recovered plain-C model must carry the NV access stream, and the
    // WAR detector must find the unversioned read-modify-write of the
    // accumulator in it.
    auto board = harness::makeBoard(harness::continuousSpec(), 11);
    auto rt = std::make_unique<runtimes::PlainCRuntime>();
    apps::BcParams p;
    auto app = std::make_unique<apps::BcLegacyApp>(*board, *rt, p);
    ModelRecorder rec(*board);
    const auto res =
        board->run(*rt, [&] { app->main(); }, 600 * kNsPerSec);
    rec.finalize();

    EXPECT_TRUE(res.completed);
    const auto view = rec.intervalView();
    ASSERT_FALSE(view.empty());
    std::size_t events = 0;
    for (const auto &iv : view)
        events += iv.events.size();
    EXPECT_GT(events, 0u);
    const auto war =
        analysis::WarHazardDetector(board->nvram()).analyze(view);
    ASSERT_FALSE(war.hazards.empty());
    EXPECT_EQ(war.hazards[0].region, "bc.totalBits");
}

TEST(ModelRecovery, SensorRelayCalibratesBothVariants)
{
    for (const bool guard : {true, false}) {
        auto board = harness::makeBoard(harness::continuousSpec(), 11);
        auto rt =
            std::make_unique<tics::TicsRuntime>(testTicsConfig());
        SensorRelayOptions opt;
        opt.checkFreshness = guard;
        opt.useVirtualRadio = guard;
        auto app =
            std::make_unique<SensorRelayApp>(*board, *rt, opt);
        ModelRecorder rec(*board);
        const auto res =
            board->run(*rt, [&] { app->main(); }, 600 * kNsPerSec);
        rec.finalize();
        EXPECT_TRUE(res.completed);
        EXPECT_TRUE(app->verify());
    }
}

// ---- full-matrix verdicts --------------------------------------------------

TEST(VerifyMatrix, DefaultConfigurationMatchesExpectedSplit)
{
    const auto verdicts = verifyMatrix();
    ASSERT_FALSE(verdicts.empty());
    for (const auto &v : verdicts)
        EXPECT_TRUE(verdictOk(v)) << v.app << " / " << v.runtime;

    const auto find = [&](const std::string &app,
                          const std::string &rt) -> const AppVerdict & {
        for (const auto &v : verdicts) {
            if (v.app == app && v.runtime == rt)
                return v;
        }
        ADD_FAILURE() << "missing pair " << app << "/" << rt;
        return verdicts.front();
    };

    // Protected checkpointing runtimes come out WAR-clean.
    EXPECT_EQ(find("BC", "TICS").count("war-possibility"), 0u);
    EXPECT_EQ(find("Cuckoo", "Alpaca-like").count("war-possibility"),
              0u);
    // Plain C is WAR-flagged everywhere, energy-flagged when its one
    // region outgrows a charge window.
    EXPECT_GT(find("BC", "plain-C").count("war-possibility"), 0u);
    EXPECT_GT(find("BC", "plain-C").count("energy-progress"), 0u);
    EXPECT_GT(find("Cuckoo", "plain-C").count("energy-progress"), 0u);
    EXPECT_GT(find("GHM", "plain-C").count("energy-progress"), 0u);
    // MementOS-like: the genesis-snapshot hardening rewrites tracked
    // globals from their initial .data image on fresh boots, closing
    // the pre-first-checkpoint window that used to be WAR-flagged.
    EXPECT_EQ(find("BC", "MementOS-like").count("war-possibility"), 0u);
    // GHM transmits directly from mid-region code.
    EXPECT_GT(find("GHM", "TICS").count("io-idempotency"), 0u);
    // The self-test twins: guarded clean, unguarded flagged both ways.
    EXPECT_EQ(find("Relay+guard", "TICS").findings.size(), 0u);
    EXPECT_GT(find("Relay-unguard", "TICS").count("timeliness"), 0u);
    EXPECT_GT(find("Relay-unguard", "TICS").count("io-idempotency"),
              0u);
}

TEST(VerifyMatrix, UndersizedCapacitorFlagsNonTermination)
{
    VerifyConfig cfg;
    cfg.capacitanceF = 1e-6; // 3840-cycle windows: nothing fits
    const auto verdicts = verifyMatrix(cfg);
    std::size_t energy = 0;
    for (const auto &v : verdicts)
        energy += v.count("energy-progress");
    EXPECT_GT(energy, 0u);
    // The verdict split itself is energy-independent and still holds.
    for (const auto &v : verdicts)
        EXPECT_TRUE(verdictOk(v)) << v.app << " / " << v.runtime;
}

// ---- cross-validation soundness --------------------------------------------

TEST(CrossValidation, EveryDynamicDetectionIsCoveredStatically)
{
    const auto report = crossValidate();
    ASSERT_FALSE(report.rows.empty());
    EXPECT_GT(report.totalDynamic, 0u);
    EXPECT_TRUE(report.fullCoverage())
        << report.totalMatched << "/" << report.totalDynamic
        << " dynamic detections matched";
    for (const auto &row : report.rows) {
        EXPECT_DOUBLE_EQ(row.coverage(), 1.0)
            << row.app << " / " << row.runtime;
    }
    // The reverse gap exists (static over-approximates) and is
    // reported, not failed.
    EXPECT_GE(report.totalStatic, report.totalConfirmed);
}
