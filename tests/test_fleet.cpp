/**
 * @file
 * Tests for the ticsfleet subsystem: the length-prefixed frame
 * protocol (round-trips, partial feeds, poisoning), the
 * formatSpec/parseGridText spec shipping contract, the env axis'
 * canonical-string stability, cross-process cache publication, and —
 * when the ticssweep binary is available — an end-to-end
 * coordinator/worker run byte-compared against the in-process engine,
 * including the deterministic crash-retry chaos path.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "fleet/coordinator.hpp"
#include "fleet/protocol.hpp"
#include "sweep/cache.hpp"
#include "sweep/grid.hpp"
#include "sweep/sweep.hpp"

namespace ticsim {
namespace {

using fleet::Frame;
using fleet::FrameReader;

// ---- protocol ----------------------------------------------------------

TEST(FleetProtocol, EncodeParseRoundTrip)
{
    Frame f;
    f["type"] = "result";
    f["plain"] = "hello world";
    f["quotes"] = "say \"hi\" \\ done";
    f["newlines"] = "line1\nline2\r\ttabbed";
    f["control"] = std::string("\x01\x1f", 2);
    f["empty"] = "";
    f["utf8"] = "\xc3\xa9\xe2\x82\xac"; // passes through as bytes

    const std::string wire = fleet::encodeFrame(f);
    FrameReader reader;
    reader.feed(wire.data(), wire.size());
    Frame got;
    std::string err;
    ASSERT_TRUE(reader.next(got, err)) << err;
    EXPECT_EQ(got, f);
    EXPECT_FALSE(reader.next(got, err));
    EXPECT_TRUE(err.empty()) << "no frame is not an error";
}

TEST(FleetProtocol, SurvivesArbitraryFeedBoundaries)
{
    Frame a{{"type", "heartbeat"}, {"shard", "3"}};
    Frame b{{"type", "done"}, {"completed", "17"},
            {"payload", "with\nnewline and \"quote\""}};
    const std::string wire =
        fleet::encodeFrame(a) + fleet::encodeFrame(b);

    // One byte at a time: a frame must never parse early or tear.
    FrameReader reader;
    std::vector<Frame> got;
    Frame f;
    std::string err;
    for (const char c : wire) {
        reader.feed(&c, 1);
        while (reader.next(f, err))
            got.push_back(f);
        ASSERT_TRUE(err.empty()) << err;
    }
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], a);
    EXPECT_EQ(got[1], b);
}

TEST(FleetProtocol, TwoFramesInOneFeed)
{
    const std::string wire =
        fleet::encodeFrame(Frame{{"type", "heartbeat"}}) +
        fleet::encodeFrame(Frame{{"type", "done"}});
    FrameReader reader;
    reader.feed(wire.data(), wire.size());
    Frame f;
    std::string err;
    ASSERT_TRUE(reader.next(f, err));
    EXPECT_EQ(f.at("type"), "heartbeat");
    ASSERT_TRUE(reader.next(f, err));
    EXPECT_EQ(f.at("type"), "done");
    EXPECT_FALSE(reader.next(f, err));
}

TEST(FleetProtocol, PoisonsOnCorruptInput)
{
    const auto expectPoison = [](const std::string &wire,
                                 const char *what) {
        FrameReader reader;
        reader.feed(wire.data(), wire.size());
        Frame f;
        std::string err;
        EXPECT_FALSE(reader.next(f, err)) << what;
        EXPECT_TRUE(reader.poisoned()) << what;
        EXPECT_FALSE(err.empty()) << what;
        // Poisoned means poisoned: even valid bytes fed later stay
        // rejected — a torn stream cannot silently resync.
        const std::string good =
            fleet::encodeFrame(Frame{{"type", "heartbeat"}});
        reader.feed(good.data(), good.size());
        EXPECT_FALSE(reader.next(f, err)) << what;
    };
    expectPoison("notalength\n{}\n", "non-numeric length");
    expectPoison("2\n{}X\n", "missing frame terminator");
    expectPoison("999999999999\n", "implausible frame length");
    expectPoison(std::string(40, '1'), "oversized length line");
    expectPoison("7\n[1,2,3]\n", "frame is not an object");
    expectPoison("13\n{\"a\":\"b\"} junk\n", "trailing bytes");
    expectPoison("17\n{\"k\":\"a\",\"k\":\"b\"}\n",
                 "duplicate keys");
}

TEST(FleetProtocol, ParseRejectsNonStringValues)
{
    Frame f;
    std::string err;
    EXPECT_FALSE(fleet::parseFrameJson("{\"n\":42}", f, err));
    EXPECT_FALSE(
        fleet::parseFrameJson("{\"o\":{\"x\":\"y\"}}", f, err));
    EXPECT_TRUE(fleet::parseFrameJson("{\"s\":\"42\"}", f, err))
        << err;
}

// ---- spec shipping -----------------------------------------------------

TEST(FleetSpec, FormatParseRoundTripsTheGrid)
{
    sweep::GridSpec spec;
    spec.apps = {"BC", "CF"};
    spec.runtimes = {"TICS", "plain-C", "Alpaca-like"};
    sweep::SupplyAxis pat;
    pat.kind = sweep::SupplyKind::Pattern;
    pat.periodMs = 12.7;
    pat.onFraction = 0.59999999999999998; // %.17g must survive
    sweep::SupplyAxis rf;
    rf.kind = sweep::SupplyKind::Rf;
    spec.supplies = {pat, rf};
    spec.capsUf = {0.0, 47.5};
    spec.segments = {128, 256};
    spec.envs = {"", "solar_diurnal"};
    spec.seeds = {11, 12, 13};

    const std::string text = sweep::formatSpec(spec);
    sweep::GridSpec back;
    back.apps.clear();
    back.runtimes.clear();
    back.supplies.clear();
    back.capsUf.clear();
    back.segments.clear();
    back.envs.clear();
    back.seeds.clear();
    std::string err;
    ASSERT_TRUE(sweep::parseGridText(text, "<roundtrip>", back, err))
        << err;

    const auto a = spec.cells();
    const auto b = back.cells();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].canonical(), b[i].canonical()) << i;
}

TEST(FleetSpec, EnvAxisCanonicalIsPinned)
{
    sweep::Cell cell;
    cell.app = "BC";
    cell.runtime = "TICS";
    cell.segmentBytes = 256;
    cell.capUf = 100.0;
    cell.env = "solar_diurnal";
    cell.seed = 11;
    cell.supply =
        sweep::SupplyAxis{sweep::SupplyKind::Continuous, 0.0, 1.0};
    // Pinned: the env token sits between the base axes and the seed.
    // Changing this string invalidates every env cell's JobId and
    // cache entry — it must be deliberate, not incidental.
    EXPECT_EQ(cell.canonical(),
              "app=BC|rt=TICS|supply=continuous|cap_uf=100|seg=256"
              "|env=solar_diurnal|seed=11");
    // And env-less cells keep their pre-env canonical byte-for-byte
    // (no "|env=" token at all), preserving every existing JobId.
    cell.env.clear();
    EXPECT_EQ(cell.canonical().find("env="), std::string::npos);
}

TEST(FleetSpec, EnvCellsNormalizeTheSupplyAxis)
{
    // With a trace the supply axis is meaningless (the trace IS the
    // supply), so distinct supply tokens must collapse into one cell;
    // capacitance stays significant (trace supplies are harvested).
    sweep::GridSpec spec;
    spec.apps = {"BC"};
    spec.runtimes = {"plain-C"};
    sweep::SupplyAxis pat;
    sweep::SupplyAxis rf;
    rf.kind = sweep::SupplyKind::Rf;
    spec.supplies = {pat, rf};
    spec.capsUf = {10.0, 100.0};
    spec.envs = {"rf_mobile"};
    const auto cells = spec.cells();
    ASSERT_EQ(cells.size(), 2u); // caps only; supplies collapsed
    for (const auto &c : cells) {
        EXPECT_EQ(c.env, "rf_mobile");
        EXPECT_EQ(c.supply.kind, sweep::SupplyKind::Continuous);
    }
}

// ---- cross-process cache publication -----------------------------------

TEST(FleetCache, ConcurrentProcessesPublishSafely)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("ticsim-fleet-cache-" + std::to_string(::getpid())))
            .string();
    std::filesystem::remove_all(dir);
    constexpr int kProcs = 4;
    constexpr int kCells = 24;

    // Every child stores the SAME cells concurrently: O_EXCL staging
    // plus rename must let all of them win some and lose some without
    // ever publishing a torn file.
    std::vector<pid_t> pids;
    for (int p = 0; p < kProcs; ++p) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            const sweep::ResultCache cache(dir);
            for (int rep = 0; rep < 3; ++rep) {
                for (int c = 0; c < kCells; ++c) {
                    sweep::Cell cell;
                    cell.app = "BC";
                    cell.runtime = "plain-C";
                    cell.seed = static_cast<std::uint64_t>(c);
                    sweep::CellResult r;
                    r.completed = true;
                    r.cycles = 1000u + static_cast<unsigned>(c);
                    r.onTimeNs = 5u * kNsPerMs;
                    r.simMs.sample(r.simMsValue());
                    cache.store(cell, r);
                }
            }
            ::_exit(0);
        }
        pids.push_back(pid);
    }
    for (const pid_t pid : pids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }

    const sweep::ResultCache cache(dir);
    for (int c = 0; c < kCells; ++c) {
        sweep::Cell cell;
        cell.app = "BC";
        cell.runtime = "plain-C";
        cell.seed = static_cast<std::uint64_t>(c);
        sweep::CellResult r;
        ASSERT_TRUE(cache.lookup(cell, r)) << c;
        EXPECT_TRUE(r.completed);
        EXPECT_EQ(r.cycles, 1000u + static_cast<unsigned>(c));
    }
    // No staging temp may be left behind (each is either renamed or
    // unlinked).
    for (const auto &e : std::filesystem::directory_iterator(dir))
        EXPECT_EQ(e.path().string().find(".tmp."), std::string::npos)
            << e.path();
    std::filesystem::remove_all(dir);
}

// ---- end-to-end coordinator/worker -------------------------------------

#ifdef TICSIM_TICSSWEEP_BIN

fleet::FleetConfig
e2eConfig()
{
    fleet::FleetConfig cfg;
    cfg.sweep.grid.apps = {"BC"};
    cfg.sweep.grid.runtimes = {"plain-C"};
    cfg.sweep.grid.seeds = {11, 12, 13, 14};
    cfg.sweep.unprotectedBudget = 200 * kNsPerMs;
    cfg.sweep.useCache = false;
    cfg.workerBin = TICSIM_TICSSWEEP_BIN;
    return cfg;
}

void
expectSameSweep(const sweep::SweepResult &a,
                const sweep::SweepResult &b)
{
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        EXPECT_EQ(a.cells[i].cell.canonical(),
                  b.cells[i].cell.canonical());
        EXPECT_EQ(a.cells[i].result.encode(),
                  b.cells[i].result.encode())
            << a.cells[i].cell.canonical();
        EXPECT_EQ(a.cells[i].result.simMs.encode(),
                  b.cells[i].result.simMs.encode());
    }
    ASSERT_EQ(a.aggregates.size(), b.aggregates.size());
    for (std::size_t i = 0; i < a.aggregates.size(); ++i) {
        EXPECT_EQ(a.aggregates[i].groupKey, b.aggregates[i].groupKey);
        EXPECT_EQ(a.aggregates[i].simMs.encode(),
                  b.aggregates[i].simMs.encode());
    }
}

TEST(FleetE2E, WorkersMatchInProcessRun)
{
    fleet::FleetConfig cfg = e2eConfig();
    const sweep::SweepResult serial = sweep::runSweep(cfg.sweep);

    cfg.workers = 3;
    const fleet::FleetResult result = fleet::runFleet(cfg);
    ASSERT_TRUE(result.complete);
    EXPECT_EQ(result.fleet.cellsCompleted, serial.cells.size());
    EXPECT_EQ(result.fleet.crashes, 0u);
    expectSameSweep(result.sweep, serial);
}

TEST(FleetE2E, CrashedWorkerIsRetriedWithIdenticalResults)
{
    fleet::FleetConfig cfg = e2eConfig();
    const sweep::SweepResult serial = sweep::runSweep(cfg.sweep);

    cfg.workers = 2;
    cfg.killWorkerShard = 0; // SIGKILL mid-shard, then retry
    const fleet::FleetResult result = fleet::runFleet(cfg);
    ASSERT_TRUE(result.complete);
    EXPECT_GE(result.fleet.crashes, 1u);
    EXPECT_GE(result.fleet.retries, 1u);
    EXPECT_GE(result.fleet.workersSpawned, 3u);
    EXPECT_TRUE(result.fleet.workers[0].crashed);
    expectSameSweep(result.sweep, serial);
}

TEST(FleetE2E, MissingWorkerBinaryReportsIncomplete)
{
    fleet::FleetConfig cfg = e2eConfig();
    cfg.workers = 2;
    cfg.maxRetries = 1;
    cfg.workerBin = "/nonexistent/ticssweep";
    const fleet::FleetResult result = fleet::runFleet(cfg);
    EXPECT_FALSE(result.complete);
    EXPECT_EQ(result.fleet.cellsCompleted, 0u);
    EXPECT_GE(result.fleet.crashes, 1u);
}

#endif // TICSIM_TICSSWEEP_BIN

} // namespace
} // namespace ticsim
