/**
 * @file
 * Tests of the telemetry subsystem: the PhaseProfiler's scope stack and
 * power-failure safety, the EventRing's bounded drop-oldest behaviour,
 * the structural invariant sum-over-phases == RunResult::cycles across
 * the whole runtime matrix, and the phase breakdown / event timeline a
 * TICS run produces on an intermittent supply.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <new>
#include <sstream>

#include "board/board.hpp"
#include "mem/nv.hpp"
#include "runtimes/chinchilla.hpp"
#include "runtimes/hibernus.hpp"
#include "runtimes/mementos.hpp"
#include "runtimes/plainc.hpp"
#include "runtimes/task_core.hpp"
#include "telemetry/trace_export.hpp"
#include "tics/runtime.hpp"

using namespace ticsim;
using namespace ticsim::telemetry;

namespace {

std::unique_ptr<board::Board>
patternBoard(TimeNs period, double duty, board::BoardConfig cfg = {})
{
    return std::make_unique<board::Board>(
        cfg, std::make_unique<energy::PatternSupply>(period, duty),
        std::make_unique<timekeeper::PerfectTimekeeper>());
}

Cycles
phaseSum(const PhaseProfiler &p)
{
    Cycles sum = 0;
    for (int i = 0; i < kPhaseCount; ++i)
        sum += p.phaseCycles(static_cast<Phase>(i));
    return sum;
}

/** Every cycle the run charged must land in exactly one phase. */
void
expectConservation(const board::Board &b, const board::RunResult &res)
{
    EXPECT_EQ(phaseSum(b.profiler()), res.cycles);
    EXPECT_EQ(b.profiler().totalCycles(), res.cycles);
}

} // namespace

// ---- PhaseProfiler unit behaviour ------------------------------------------

TEST(PhaseProfiler, DefaultPhaseIsApp)
{
    PhaseProfiler p;
    p.attribute(100);
    EXPECT_EQ(p.phaseCycles(Phase::App), 100u);
    EXPECT_EQ(p.totalCycles(), 100u);
}

TEST(PhaseProfiler, InnermostScopeWins)
{
    PhaseProfiler p;
    {
        PhaseScope outer(p, Phase::UndoLog);
        p.attribute(10);
        {
            PhaseScope inner(p, Phase::Checkpoint);
            p.attribute(7); // forced checkpoint inside the barrier
        }
        p.attribute(3);
    }
    p.attribute(5);
    EXPECT_EQ(p.phaseCycles(Phase::UndoLog), 13u);
    EXPECT_EQ(p.phaseCycles(Phase::Checkpoint), 7u);
    EXPECT_EQ(p.phaseCycles(Phase::App), 5u);
    EXPECT_EQ(p.totalCycles(), 25u);
}

TEST(PhaseProfiler, StaleScopeDestructorIsNoOp)
{
    // A power failure abandons the app stack; the Board then calls
    // resetScopes(). If a checkpointed stack image containing a scope
    // object is later restored, its destructor runs in a power life
    // where the scope was never pushed — it must not corrupt the stack.
    PhaseProfiler p;
    alignas(PhaseScope) unsigned char raw[sizeof(PhaseScope)];
    auto *leaked = new (raw) PhaseScope(p, Phase::Checkpoint);
    EXPECT_EQ(p.depth(), 1u);
    p.resetScopes(); // boot after brown-out
    p.attribute(4);  // new life: back to App
    leaked->~PhaseScope(); // restored-image destructor: no-op
    EXPECT_EQ(p.depth(), 0u);
    p.attribute(2);
    EXPECT_EQ(p.phaseCycles(Phase::App), 6u);
    EXPECT_EQ(p.phaseCycles(Phase::Checkpoint), 0u);

    // Same, with the stale scope recorded at a nested depth: a fresh
    // scope open at a shallower depth in the new life is untouched.
    PhaseProfiler q;
    PhaseScope outer(q, Phase::UndoLog); // depth 1
    alignas(PhaseScope) unsigned char raw2[sizeof(PhaseScope)];
    auto *nested = new (raw2) PhaseScope(q, Phase::Checkpoint); // depth 2
    q.resetScopes();
    {
        PhaseScope fresh(q, Phase::Restore); // depth 1 again
        q.attribute(4);
        nested->~PhaseScope(); // openDepth 1 >= depth 1: no-op
        EXPECT_EQ(q.depth(), 1u);
        q.attribute(2);
    }
    EXPECT_EQ(q.depth(), 0u);
    EXPECT_EQ(q.phaseCycles(Phase::Restore), 6u);
    EXPECT_EQ(q.phaseCycles(Phase::Checkpoint), 0u);
}

TEST(PhaseProfiler, ResetCyclesKeepsScopes)
{
    PhaseProfiler p;
    PhaseScope s(p, Phase::Timekeeper);
    p.attribute(9);
    p.resetCycles();
    EXPECT_EQ(p.totalCycles(), 0u);
    p.attribute(1);
    EXPECT_EQ(p.phaseCycles(Phase::Timekeeper), 1u);
}

// ---- EventRing -------------------------------------------------------------

TEST(EventRing, BoundedDropOldest)
{
    EventRing ring(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        ring.emit(EventKind::Boot, i * 100, i);
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.dropped(), 6u);
    const auto events = ring.snapshot();
    ASSERT_EQ(events.size(), 4u);
    // Oldest-first, and only the newest four survive.
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(events[i].arg0, i + 6);
        EXPECT_EQ(events[i].at, (i + 6) * 100);
    }
}

TEST(EventRing, MultiWrapDropAccountingStaysExact)
{
    // Drive the ring through several full wraps plus a remainder and
    // check the drop counter accounts for every evicted event, not
    // just the last wrap's worth.
    constexpr std::size_t kCap = 3;
    constexpr std::uint64_t kWraps = 5;
    constexpr std::uint64_t kRemainder = 2;
    constexpr std::uint64_t kTotal = kWraps * kCap + kRemainder; // 17
    EventRing ring(kCap);
    for (std::uint64_t i = 0; i < kTotal; ++i)
        ring.emit(EventKind::Boot, i * 10, i);
    EXPECT_EQ(ring.size(), kCap);
    EXPECT_EQ(ring.dropped(), kTotal - kCap);
    const auto events = ring.snapshot();
    ASSERT_EQ(events.size(), kCap);
    // The survivors are exactly the newest kCap, oldest-first.
    for (std::size_t i = 0; i < kCap; ++i) {
        EXPECT_EQ(events[i].arg0, kTotal - kCap + i);
        EXPECT_EQ(events[i].at, (kTotal - kCap + i) * 10);
    }
}

TEST(EventRing, DropCounterSurvivesSnapshotAndKeepsCounting)
{
    // snapshot() must not disturb the accounting; subsequent overflow
    // keeps accumulating on top of the earlier drops.
    EventRing ring(2);
    for (std::uint64_t i = 0; i < 5; ++i)
        ring.emit(EventKind::Boot, i, i);
    EXPECT_EQ(ring.dropped(), 3u);
    (void)ring.snapshot();
    EXPECT_EQ(ring.dropped(), 3u);
    for (std::uint64_t i = 5; i < 9; ++i)
        ring.emit(EventKind::Boot, i, i);
    EXPECT_EQ(ring.size(), 2u);
    EXPECT_EQ(ring.dropped(), 7u);
    const auto events = ring.snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].arg0, 7u);
    EXPECT_EQ(events[1].arg0, 8u);
}

TEST(EventRing, ClearResets)
{
    EventRing ring(8);
    ring.emit(EventKind::BrownOut, 1);
    ring.clear();
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_TRUE(ring.snapshot().empty());
}

// ---- cycle conservation across the runtime matrix --------------------------

TEST(Telemetry, PhaseSumMatchesRunCyclesPlainC)
{
    auto b = patternBoard(20 * kNsPerMs, 0.5);
    runtimes::PlainCRuntime rt;
    mem::nv<std::uint32_t> i(b->nvram(), "i");
    const auto res = b->run(
        rt,
        [&] {
            while (i.get() < 40) {
                i = i.get() + 1;
                b->charge(400);
            }
        },
        kNsPerSec);
    expectConservation(*b, res);
    EXPECT_GT(b->profiler().phaseCycles(Phase::App), 0u);
    EXPECT_GT(b->profiler().phaseCycles(Phase::Boot), 0u);
}

TEST(Telemetry, PhaseSumMatchesRunCyclesTics)
{
    auto b = patternBoard(16 * kNsPerMs, 0.6);
    tics::TicsConfig cfg;
    cfg.segmentBytes = 128;
    cfg.policy = tics::PolicyKind::Timer;
    cfg.timerPeriod = 2 * kNsPerMs;
    tics::TicsRuntime rt(cfg);
    mem::nv<std::uint32_t> i(b->nvram(), "i");
    const auto res = b->run(
        rt,
        [&] {
            board::FrameGuard fg(rt, 24);
            while (i.get() < 60) {
                rt.triggerPoint();
                (void)b->deviceNow();
                i = i.get() + 1;
                b->charge(500);
            }
        },
        10 * kNsPerSec);
    EXPECT_TRUE(res.completed);
    expectConservation(*b, res);
}

TEST(Telemetry, PhaseSumMatchesRunCyclesMementos)
{
    auto b = patternBoard(16 * kNsPerMs, 0.6);
    runtimes::MementosConfig cfg;
    cfg.trigger = runtimes::MementosConfig::Trigger::Every;
    runtimes::MementosRuntime rt(cfg);
    mem::nv<std::uint32_t> i(b->nvram(), "i");
    rt.trackGlobals(i.raw(), sizeof(std::uint32_t));
    const auto res = b->run(
        rt,
        [&] {
            while (i.get() < 40) {
                rt.triggerPoint();
                i = i.get() + 1;
                b->charge(500);
            }
        },
        10 * kNsPerSec);
    expectConservation(*b, res);
}

TEST(Telemetry, PhaseSumMatchesRunCyclesChinchilla)
{
    auto b = patternBoard(16 * kNsPerMs, 0.6);
    runtimes::ChinchillaRuntime rt;
    mem::nv<std::uint32_t> i(b->nvram(), "i");
    const auto res = b->run(
        rt,
        [&] {
            while (i.get() < 40) {
                rt.triggerPoint();
                i = i.get() + 1;
                b->charge(500);
            }
        },
        10 * kNsPerSec);
    expectConservation(*b, res);
}

TEST(Telemetry, PhaseSumMatchesRunCyclesHibernus)
{
    // Pattern supplies have no observable voltage, so Hibernus stays
    // inert — boot attribution and conservation must still hold.
    auto b = patternBoard(20 * kNsPerMs, 0.7);
    runtimes::HibernusRuntime rt(2.1);
    mem::nv<std::uint32_t> i(b->nvram(), "i");
    const auto res = b->run(
        rt,
        [&] {
            while (i.get() < 30) {
                i = i.get() + 1;
                b->charge(300);
            }
        },
        10 * kNsPerSec);
    expectConservation(*b, res);
}

TEST(Telemetry, PhaseSumMatchesRunCyclesTaskRuntime)
{
    auto b = patternBoard(16 * kNsPerMs, 0.6);
    taskrt::TaskRuntime rt;
    taskrt::Channel<std::uint32_t> ch(rt, b->nvram(), "n");
    taskrt::TaskId self = 0;
    self = rt.addTask("count", [&]() -> taskrt::TaskId {
        ch.set(ch.get() + 1);
        b->charge(600);
        return ch.get() >= 30 ? taskrt::kTaskDone : self;
    });
    const auto res = b->run(rt, {}, 10 * kNsPerSec);
    expectConservation(*b, res);
    EXPECT_GT(b->profiler().phaseCycles(Phase::Checkpoint), 0u);
}

// ---- phase breakdown + event timeline of an intermittent TICS run ----------

TEST(Telemetry, TicsPatternRunAttributesAllRuntimePhases)
{
    auto b = patternBoard(12 * kNsPerMs, 0.55);
    tics::TicsConfig cfg;
    cfg.segmentBytes = 128;
    cfg.policy = tics::PolicyKind::Timer;
    cfg.timerPeriod = 2 * kNsPerMs;
    tics::TicsRuntime rt(cfg);
    mem::nv<std::uint32_t> i(b->nvram(), "i");
    const auto res = b->run(
        rt,
        [&] {
            board::FrameGuard fg(rt, 32);
            while (i.get() < 120) {
                rt.triggerPoint();
                (void)b->deviceNow();
                i = i.get() + 1;
                b->charge(700);
            }
        },
        30 * kNsPerSec);
    ASSERT_TRUE(res.completed);
    ASSERT_GT(res.reboots, 0u);
    expectConservation(*b, res);

    const auto &p = b->profiler();
    EXPECT_GT(p.phaseCycles(Phase::App), 0u);
    EXPECT_GT(p.phaseCycles(Phase::Checkpoint), 0u);
    EXPECT_GT(p.phaseCycles(Phase::Restore), 0u);
    EXPECT_GT(p.phaseCycles(Phase::UndoLog), 0u);
    EXPECT_GT(p.phaseCycles(Phase::Timekeeper), 0u);
    EXPECT_GT(p.phaseCycles(Phase::Boot), 0u);

    const auto events = b->events().snapshot();
    const auto count = [&](EventKind k) {
        return std::count_if(events.begin(), events.end(),
                             [&](const Event &e) { return e.kind == k; });
    };
    // One Boot per power-on (initial + each reboot), one BrownOut per
    // death, and at least one checkpoint commit and restore.
    EXPECT_EQ(count(EventKind::Boot),
              static_cast<std::ptrdiff_t>(res.reboots + 1));
    EXPECT_EQ(count(EventKind::BrownOut),
              static_cast<std::ptrdiff_t>(res.reboots));
    EXPECT_GT(count(EventKind::CheckpointCommit), 0);
    EXPECT_GT(count(EventKind::Restore), 0);

    // Instant events are emitted at the current virtual time, so they
    // arrive in timestamp order. (PhaseSlice records are exempt: a
    // slice is appended when its scope *closes* but stamped with its
    // start time, so it can legitimately sort before instants emitted
    // inside it.)
    TimeNs prev = 0;
    for (const auto &e : events) {
        if (e.kind == EventKind::PhaseSlice)
            continue;
        EXPECT_LE(prev, e.at);
        prev = e.at;
    }
}

// ---- Chrome trace export ---------------------------------------------------

TEST(Telemetry, ChromeTraceExportIsWellFormed)
{
    auto b = patternBoard(12 * kNsPerMs, 0.55);
    tics::TicsConfig cfg;
    cfg.segmentBytes = 128;
    cfg.policy = tics::PolicyKind::Timer;
    cfg.timerPeriod = 2 * kNsPerMs;
    tics::TicsRuntime rt(cfg);
    mem::nv<std::uint32_t> i(b->nvram(), "i");
    const auto res = b->run(
        rt,
        [&] {
            while (i.get() < 40) {
                rt.triggerPoint();
                i = i.get() + 1;
                b->charge(600);
            }
        },
        10 * kNsPerSec);
    ASSERT_TRUE(res.completed);

    std::ostringstream os;
    writeChromeTrace(os, b->events().snapshot(), "unit",
                     b->events().dropped());
    const std::string json = os.str();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '\n');
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("checkpoint_commit"), std::string::npos);
    // Balanced braces/brackets (no dangling commas breaking structure
    // would still parse-fail in Perfetto; this is a cheap sanity net).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}
