/**
 * @file
 * Tests of the time-sensitivity semantics (paper Section 3.2): the @=
 * atomic timed assignment, @expires freshness gating and discard,
 * @expires/catch mid-block expiry with parallel-undo rollback, and
 * @timely single-arm guarantees.
 */

#include <gtest/gtest.h>

#include "board/board.hpp"
#include "tics/annotations.hpp"

using namespace ticsim;
using namespace ticsim::tics;

namespace {

struct AnnotationFixture : ::testing::Test {
    std::unique_ptr<board::Board> b;
    std::unique_ptr<TicsRuntime> rt;

    void
    SetUp() override
    {
        b = std::make_unique<board::Board>(
            board::BoardConfig{},
            std::make_unique<energy::ContinuousSupply>(),
            std::make_unique<timekeeper::PerfectTimekeeper>());
        TicsConfig cfg;
        cfg.policy = PolicyKind::None;
        rt = std::make_unique<TicsRuntime>(cfg);
    }

    board::RunResult
    run(std::function<void()> body)
    {
        return b->run(*rt, std::move(body), 60 * kNsPerSec);
    }
};

} // namespace

TEST_F(AnnotationFixture, AssignTimedStampsValueAndTime)
{
    Expiring<int> x(*rt, b->nvram(), "x", 100 * kNsPerMs);
    run([&] {
        x.assignTimed(42, 0);
    });
    EXPECT_EQ(x.get(), 42);
    EXPECT_GT(x.timestamp(), 0u);
    // The mandated checkpoint closed the atomic block.
    EXPECT_GE(rt->checkpointCount(CkptCause::AtomicEnd), 1u);
}

TEST_F(AnnotationFixture, FreshnessFollowsLifetime)
{
    Expiring<int> x(*rt, b->nvram(), "x", 50 * kNsPerMs);
    bool freshEarly = false, freshLate = true;
    run([&] {
        x.assignTimed(1, 0);
        freshEarly = x.fresh();
        b->charge(80000); // 80 ms at 1 MHz
        freshLate = x.fresh();
    });
    EXPECT_TRUE(freshEarly);
    EXPECT_FALSE(freshLate);
}

TEST_F(AnnotationFixture, ZeroLifetimeNeverExpires)
{
    Expiring<int> x(*rt, b->nvram(), "x", 0);
    bool fresh = false;
    run([&] {
        x.assignTimed(1, 0);
        b->charge(500000);
        fresh = x.fresh();
    });
    EXPECT_TRUE(fresh);
}

TEST_F(AnnotationFixture, ExpiresRunsBodyOnlyWhenFresh)
{
    Expiring<int> x(*rt, b->nvram(), "x", 50 * kNsPerMs);
    int bodyRuns = 0;
    bool first = false, second = false;
    run([&] {
        x.assignTimed(5, 0);
        first = expires(*rt, x, 0, [&] { ++bodyRuns; });
        b->charge(80000); // let it expire
        second = expires(*rt, x, 1, [&] { ++bodyRuns; });
    });
    EXPECT_TRUE(first);
    EXPECT_FALSE(second);
    EXPECT_EQ(bodyRuns, 1);
}

TEST_F(AnnotationFixture, ExpiresCatchRollsBackAndHandles)
{
    Expiring<int> x(*rt, b->nvram(), "x", 20 * kNsPerMs);
    mem::nv<int> acc(b->nvram(), "acc", 100);
    bool completed = true;
    int handled = 0;
    run([&] {
        x.assignTimed(5, 0);
        completed = expiresCatch(
            *rt, x, 0,
            [&] {
                acc = 999; // must be rolled back on expiry
                // Long work with trigger points: the expiry timer
                // fires mid-block.
                for (int i = 0; i < 100; ++i) {
                    b->charge(1000);
                    rt->triggerPoint();
                }
            },
            [&] { ++handled; });
    });
    EXPECT_FALSE(completed);
    EXPECT_EQ(handled, 1);
    EXPECT_EQ(acc.get(), 100); // the block's write was undone
}

TEST_F(AnnotationFixture, ExpiresCatchCompletesWhenFast)
{
    Expiring<int> x(*rt, b->nvram(), "x", 100 * kNsPerMs);
    mem::nv<int> acc(b->nvram(), "acc");
    bool completed = false;
    int handled = 0;
    run([&] {
        x.assignTimed(5, 0);
        completed = expiresCatch(
            *rt, x, 0,
            [&] {
                acc = 7;
                b->charge(1000);
                rt->triggerPoint();
            },
            [&] { ++handled; });
    });
    EXPECT_TRUE(completed);
    EXPECT_EQ(handled, 0);
    EXPECT_EQ(acc.get(), 7);
}

TEST_F(AnnotationFixture, ExpiresCatchStaleAtEntryGoesToHandler)
{
    Expiring<int> x(*rt, b->nvram(), "x", 10 * kNsPerMs);
    int handled = 0;
    int bodyRuns = 0;
    run([&] {
        x.assignTimed(5, 0);
        b->charge(50000);
        expiresCatch(*rt, x, 0, [&] { ++bodyRuns; },
                     [&] { ++handled; });
    });
    EXPECT_EQ(bodyRuns, 0);
    EXPECT_EQ(handled, 1);
}

TEST_F(AnnotationFixture, TimelyTakesCorrectArm)
{
    int thenRuns = 0, elseRuns = 0;
    run([&] {
        const TimeNs deadline = b->now() + 100 * kNsPerMs;
        timely(*rt, "br", 0, deadline, [&] { ++thenRuns; },
               [&] { ++elseRuns; });
        b->charge(200000); // blow past the deadline
        timely(*rt, "br", 1, deadline, [&] { ++thenRuns; },
               [&] { ++elseRuns; });
    });
    EXPECT_EQ(thenRuns, 1);
    EXPECT_EQ(elseRuns, 1);
    EXPECT_EQ(b->monitor()
                  .counts(board::ViolationKind::TimelyBranch)
                  .observed,
              0u);
}

TEST_F(AnnotationFixture, TimelyCommitsDecisionBeforeBody)
{
    // A failure inside the taken branch must re-execute the body only
    // (same arm), never re-read the clock.
    int bodyRuns = 0;
    const auto res = run([&] {
        const TimeNs deadline = b->now() + 50 * kNsPerMs;
        timely(
            *rt, "br", 0, deadline,
            [&] {
                ++bodyRuns;
                if (bodyRuns == 1) {
                    // Push past the deadline, then "fail": the resume
                    // point is the decision checkpoint.
                    b->charge(80000);
                    b->ctx().exitWith(context::ExitReason::PowerFail);
                }
            },
            [] { FAIL() << "else arm must never run"; });
    });
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(bodyRuns, 2);
    EXPECT_EQ(b->monitor()
                  .counts(board::ViolationKind::TimelyBranch)
                  .observed,
              0u);
}

TEST_F(AnnotationFixture, SetDoesNotRefreshTimestamp)
{
    Expiring<int> x(*rt, b->nvram(), "x", 30 * kNsPerMs);
    bool freshAfterSet = true;
    run([&] {
        x.assignTimed(1, 0);
        b->charge(50000);
        x.set(2); // unit conversion etc.: value changes, age does not
        freshAfterSet = x.fresh();
    });
    EXPECT_EQ(x.get(), 2);
    EXPECT_FALSE(freshAfterSet);
}
