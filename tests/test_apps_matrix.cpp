/**
 * @file
 * The benchmark x runtime correctness matrix: every application
 * variant must compute the exact golden result under continuous power
 * AND under heavy intermittency for every runtime that can express it.
 * This is the paper's "each application was verified for correctness
 * at the end of each execution" requirement, mechanized.
 */

#include <gtest/gtest.h>

#include "apps/ar/ar_chinchilla.hpp"
#include "apps/ar/ar_legacy.hpp"
#include "apps/ar/ar_task.hpp"
#include "apps/bc/bc_chinchilla.hpp"
#include "apps/bc/bc_legacy.hpp"
#include "apps/bc/bc_task.hpp"
#include "apps/cuckoo/cuckoo_chinchilla.hpp"
#include "apps/cuckoo/cuckoo_legacy.hpp"
#include "apps/cuckoo/cuckoo_task.hpp"
#include "board/board.hpp"
#include "runtimes/ink.hpp"
#include "runtimes/mayfly.hpp"
#include "runtimes/mementos.hpp"
#include "runtimes/plainc.hpp"
#include "tics/runtime.hpp"

using namespace ticsim;

namespace {

enum class Power { Continuous, Intermittent };

std::unique_ptr<board::Board>
makeBoard(Power p, std::uint64_t seed = 11)
{
    board::BoardConfig cfg;
    cfg.seed = seed;
    std::unique_ptr<energy::Supply> supply;
    if (p == Power::Continuous) {
        supply = std::make_unique<energy::ContinuousSupply>();
    } else {
        supply =
            std::make_unique<energy::PatternSupply>(30 * kNsPerMs, 0.6);
    }
    return std::make_unique<board::Board>(
        cfg, std::move(supply),
        std::make_unique<timekeeper::PerfectTimekeeper>());
}

tics::TicsConfig
ticsCfg(std::uint32_t segBytes)
{
    tics::TicsConfig c;
    c.segmentBytes = segBytes;
    c.policy = tics::PolicyKind::Timer;
    c.timerPeriod = 5 * kNsPerMs;
    return c;
}

constexpr TimeNs kBudget = 600 * kNsPerSec;

struct MatrixCase {
    const char *name;
    Power power;
    std::uint32_t segBytes; ///< only used by TICS cases
};

class AppMatrix : public ::testing::TestWithParam<MatrixCase>
{
};

} // namespace

TEST_P(AppMatrix, BcLegacyUnderTics)
{
    const auto &mc = GetParam();
    auto b = makeBoard(mc.power);
    tics::TicsRuntime rt(ticsCfg(mc.segBytes));
    apps::BcLegacyApp app(*b, rt);
    const auto res = b->run(rt, [&] { app.main(); }, kBudget);
    ASSERT_TRUE(res.completed);
    if (mc.power == Power::Intermittent)
        EXPECT_GT(res.reboots, 0u);
    EXPECT_TRUE(app.verify())
        << "total=" << app.totalBits()
        << " expected=" << apps::BcLegacyApp::expectedTotal(app.params())
        << " mismatches=" << app.mismatches();
}

TEST_P(AppMatrix, ArLegacyUnderTics)
{
    const auto &mc = GetParam();
    auto b = makeBoard(mc.power);
    tics::TicsRuntime rt(ticsCfg(mc.segBytes));
    apps::ArLegacyApp app(*b, rt);
    const auto res = b->run(rt, [&] { app.main(); }, kBudget);
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(app.verify()) << "stationary=" << app.stationary()
                              << " moving=" << app.moving();
}

TEST_P(AppMatrix, CuckooLegacyUnderTics)
{
    const auto &mc = GetParam();
    auto b = makeBoard(mc.power);
    tics::TicsRuntime rt(ticsCfg(mc.segBytes));
    apps::CuckooLegacyApp app(*b, rt);
    const auto res = b->run(rt, [&] { app.main(); }, kBudget);
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(app.verify()) << "inserted=" << app.inserted()
                              << " recovered=" << app.recovered();
}

INSTANTIATE_TEST_SUITE_P(
    PowerAndSegments, AppMatrix,
    ::testing::Values(MatrixCase{"cont_s256", Power::Continuous, 256},
                      MatrixCase{"int_s256", Power::Intermittent, 256},
                      MatrixCase{"int_s64", Power::Intermittent, 64},
                      MatrixCase{"int_s50", Power::Intermittent, 50}),
    [](const auto &info) { return std::string(info.param.name); });

TEST(AppMatrixMementos, AllLegacyAppsComplete)
{
    for (const Power p : {Power::Continuous, Power::Intermittent}) {
        {
            auto b = makeBoard(p);
            runtimes::MementosRuntime rt;
            apps::BcLegacyApp app(*b, rt);
            const auto res = b->run(rt, [&] { app.main(); }, kBudget);
            ASSERT_TRUE(res.completed);
            EXPECT_TRUE(app.verify());
        }
        {
            auto b = makeBoard(p);
            runtimes::MementosRuntime rt;
            apps::ArLegacyApp app(*b, rt);
            const auto res = b->run(rt, [&] { app.main(); }, kBudget);
            ASSERT_TRUE(res.completed);
            EXPECT_TRUE(app.verify());
        }
        {
            auto b = makeBoard(p);
            runtimes::MementosRuntime rt;
            apps::CuckooLegacyApp app(*b, rt);
            const auto res = b->run(rt, [&] { app.main(); }, kBudget);
            ASSERT_TRUE(res.completed);
            EXPECT_TRUE(app.verify());
        }
    }
}

TEST(AppMatrixChinchilla, AllChinchillaVariantsComplete)
{
    for (const Power p : {Power::Continuous, Power::Intermittent}) {
        {
            auto b = makeBoard(p);
            runtimes::ChinchillaRuntime rt;
            EXPECT_FALSE(rt.supportsRecursion());
            apps::BcChinchillaApp app(*b, rt);
            const auto res = b->run(rt, [&] { app.main(); }, kBudget);
            ASSERT_TRUE(res.completed);
            EXPECT_TRUE(app.verify());
        }
        {
            auto b = makeBoard(p);
            runtimes::ChinchillaRuntime rt;
            apps::ArChinchillaApp app(*b, rt);
            const auto res = b->run(rt, [&] { app.main(); }, kBudget);
            ASSERT_TRUE(res.completed);
            EXPECT_TRUE(app.verify());
        }
        {
            auto b = makeBoard(p);
            runtimes::ChinchillaRuntime rt;
            apps::CuckooChinchillaApp app(*b, rt);
            const auto res = b->run(rt, [&] { app.main(); }, kBudget);
            ASSERT_TRUE(res.completed);
            EXPECT_TRUE(app.verify());
        }
    }
}

TEST(AppMatrixTask, MayflyLoopFreePortsComplete)
{
    for (const Power p : {Power::Continuous, Power::Intermittent}) {
        {
            auto b = makeBoard(p);
            taskrt::MayflyRuntime rt;
            apps::BcTaskApp app(*b, rt, {}, /*graphLoop=*/false);
            ASSERT_TRUE(rt.validateAcyclic());
            const auto res = b->run(rt, {}, kBudget);
            ASSERT_TRUE(res.completed);
            EXPECT_TRUE(app.verify());
        }
        {
            auto b = makeBoard(p);
            taskrt::MayflyRuntime rt;
            apps::ArTaskApp app(*b, rt, {}, /*graphLoop=*/false);
            ASSERT_TRUE(rt.validateAcyclic());
            const auto res = b->run(rt, {}, kBudget);
            ASSERT_TRUE(res.completed);
            EXPECT_TRUE(app.verify());
        }
        {
            // The looping ports are NOT valid MayFly graphs.
            auto b = makeBoard(p);
            taskrt::MayflyRuntime rt;
            apps::BcTaskApp app(*b, rt, {}, /*graphLoop=*/true);
            EXPECT_FALSE(rt.validateAcyclic());
        }
    }
}

TEST(AppMatrixTask, AlpacaAndInkVariantsComplete)
{
    for (const Power p : {Power::Continuous, Power::Intermittent}) {
        {
            auto b = makeBoard(p);
            taskrt::TaskRuntime rt;
            apps::BcTaskApp app(*b, rt);
            const auto res = b->run(rt, {}, kBudget);
            ASSERT_TRUE(res.completed);
            EXPECT_TRUE(app.verify());
        }
        {
            auto b = makeBoard(p);
            taskrt::InkRuntime rt;
            apps::ArTaskApp app(*b, rt);
            const auto res = b->run(rt, {}, kBudget);
            ASSERT_TRUE(res.completed);
            EXPECT_TRUE(app.verify());
        }
        {
            auto b = makeBoard(p);
            taskrt::TaskRuntime rt;
            apps::CuckooTaskApp app(*b, rt);
            const auto res = b->run(rt, {}, kBudget);
            ASSERT_TRUE(res.completed);
            EXPECT_TRUE(app.verify());
        }
    }
}
