/**
 * @file
 * Unit tests for the execution-context substrate: fresh runs,
 * abandonment, register capture + stack-image restore cycles, and
 * address classification. These exercise the ucontext mechanics the
 * whole intermittent simulation stands on.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "context/exec_context.hpp"

using namespace ticsim;
using namespace ticsim::context;

namespace {

constexpr std::size_t kStack = 64 * 1024;

struct Fixture {
    std::vector<std::uint8_t> stack;
    ExecContext ctx;

    Fixture() : stack(kStack, 0), ctx(stack.data(), kStack) {}
};

} // namespace

TEST(ExecContext, RunsToCompletion)
{
    Fixture f;
    int ran = 0;
    f.ctx.prepare([&] { ran = 1; });
    EXPECT_EQ(f.ctx.run(), ExitReason::Completed);
    EXPECT_EQ(ran, 1);
    EXPECT_FALSE(f.ctx.inside());
}

TEST(ExecContext, ExitWithAbandons)
{
    Fixture f;
    int progress = 0;
    f.ctx.prepare([&] {
        progress = 1;
        f.ctx.exitWith(ExitReason::PowerFail);
        progress = 2; // never reached
    });
    EXPECT_EQ(f.ctx.run(), ExitReason::PowerFail);
    EXPECT_EQ(progress, 1);
}

TEST(ExecContext, FreshPrepareRestartsFromEntry)
{
    Fixture f;
    int runs = 0;
    auto entry = [&] {
        ++runs;
        f.ctx.exitWith(ExitReason::PowerFail);
    };
    f.ctx.prepare(entry);
    f.ctx.run();
    f.ctx.prepare(entry);
    f.ctx.run();
    EXPECT_EQ(runs, 2);
}

TEST(ExecContext, OnStackClassifiesAddresses)
{
    Fixture f;
    bool insideOnStack = false;
    bool heapOnStack = true;
    int hostLocal = 0;
    f.ctx.prepare([&] {
        int simLocal = 0;
        insideOnStack = f.ctx.onStack(&simLocal);
        heapOnStack = f.ctx.onStack(&hostLocal);
    });
    f.ctx.run();
    EXPECT_TRUE(insideOnStack);
    EXPECT_FALSE(heapOnStack);
    EXPECT_FALSE(f.ctx.onStack(&hostLocal));
}

TEST(ExecContext, StackBoundsAreConsistent)
{
    Fixture f;
    EXPECT_EQ(f.ctx.stackSize(), kStack);
    EXPECT_EQ(f.ctx.stackTop(),
              reinterpret_cast<std::uintptr_t>(f.ctx.stackBase()) +
                  kStack);
}

TEST(ExecContext, CaptureAndResumeMidFunction)
{
    // The full intermittent cycle, by hand: run, capture registers +
    // stack image at a checkpoint, "fail", restore bytes, resume, and
    // observe re-execution of exactly the post-checkpoint suffix.
    Fixture f;
    RegSlot slot;
    std::vector<std::uint8_t> image(kStack);
    std::uintptr_t imgLow = 0;
    int preCkpt = 0;
    int postCkpt = 0;
    int result = 0;

    f.ctx.prepare([&] {
        int local = 5;
        ++preCkpt;
        f.ctx.armResumedCheck();
        getcontext(&slot.uc);
        if (!f.ctx.wasResumed()) {
            // Capture path: copy the live stack including this frame.
            const auto low = ExecContext::probeSp() - 512;
            imgLow = low;
            std::memcpy(image.data(), reinterpret_cast<void *>(low),
                        f.ctx.stackTop() - low);
        }
        ++postCkpt;
        local += 10;
        if (postCkpt == 1) {
            // First pass: die after the checkpoint.
            f.ctx.exitWith(ExitReason::PowerFail);
        }
        result = local;
    });

    EXPECT_EQ(f.ctx.run(), ExitReason::PowerFail);
    EXPECT_EQ(preCkpt, 1);
    EXPECT_EQ(postCkpt, 1);

    // Reboot: restore the image, re-enter at the capture point.
    std::memcpy(reinterpret_cast<void *>(imgLow), image.data(),
                f.ctx.stackTop() - imgLow);
    f.ctx.prepareResume(slot);
    EXPECT_EQ(f.ctx.run(), ExitReason::Completed);
    EXPECT_EQ(preCkpt, 1);  // the prefix did NOT re-execute
    EXPECT_EQ(postCkpt, 2); // the suffix did
    EXPECT_EQ(result, 15);  // local was restored to its value (5) + 10
}

TEST(ExecContext, RepeatedResumeFromOneCheckpoint)
{
    Fixture f;
    RegSlot slot;
    std::vector<std::uint8_t> image(kStack);
    std::uintptr_t imgLow = 0;
    int attempts = 0;

    f.ctx.prepare([&] {
        f.ctx.armResumedCheck();
        getcontext(&slot.uc);
        f.ctx.wasResumed(); // clear either way
        if (imgLow == 0) {
            const auto low = ExecContext::probeSp() - 512;
            imgLow = low;
            std::memcpy(image.data(), reinterpret_cast<void *>(low),
                        f.ctx.stackTop() - low);
        }
        ++attempts;
        if (attempts < 4)
            f.ctx.exitWith(ExitReason::PowerFail);
    });

    EXPECT_EQ(f.ctx.run(), ExitReason::PowerFail);
    for (int i = 0; i < 2; ++i) {
        std::memcpy(reinterpret_cast<void *>(imgLow), image.data(),
                    f.ctx.stackTop() - imgLow);
        f.ctx.prepareResume(slot);
        EXPECT_EQ(f.ctx.run(), ExitReason::PowerFail);
    }
    std::memcpy(reinterpret_cast<void *>(imgLow), image.data(),
                f.ctx.stackTop() - imgLow);
    f.ctx.prepareResume(slot);
    EXPECT_EQ(f.ctx.run(), ExitReason::Completed);
    EXPECT_EQ(attempts, 4);
}

TEST(ExecContext, ProbeSpPointsIntoCurrentStack)
{
    Fixture f;
    std::uintptr_t probed = 0;
    f.ctx.prepare([&] { probed = ExecContext::probeSp(); });
    f.ctx.run();
    EXPECT_GE(probed, reinterpret_cast<std::uintptr_t>(f.ctx.stackBase()));
    EXPECT_LT(probed, f.ctx.stackTop());
}
