/**
 * @file
 * Tests of the mini-TinyOS kernel: FIFO task queue semantics and
 * overflow, repeating timers with missed-fire coalescing, split-phase
 * sensing, and active-message sends.
 */

#include <gtest/gtest.h>

#include "board/board.hpp"
#include "runtimes/plainc.hpp"
#include "tinyos/kernel.hpp"

using namespace ticsim;
using namespace ticsim::tinyos;

namespace {

struct TinyosFixture : ::testing::Test {
    std::unique_ptr<board::Board> b;
    runtimes::PlainCRuntime rt;

    void
    SetUp() override
    {
        b = std::make_unique<board::Board>(
            board::BoardConfig{},
            std::make_unique<energy::ContinuousSupply>(),
            std::make_unique<timekeeper::PerfectTimekeeper>());
    }

    void
    runApp(std::function<void(Kernel &)> body)
    {
        b->run(
            rt,
            [&] {
                Kernel k(*b, rt);
                body(k);
            },
            60 * kNsPerSec);
    }
};

struct Seq {
    std::vector<int> order;
    Kernel *k = nullptr;
};

void
record1(void *arg)
{
    static_cast<Seq *>(arg)->order.push_back(1);
}

void
record2(void *arg)
{
    static_cast<Seq *>(arg)->order.push_back(2);
}

void
stopKernel(void *arg)
{
    static_cast<Seq *>(arg)->k->stop();
}

} // namespace

TEST_F(TinyosFixture, TasksRunFifo)
{
    Seq seq;
    runApp([&](Kernel &k) {
        seq.k = &k;
        EXPECT_TRUE(k.postTask(record1, &seq));
        EXPECT_TRUE(k.postTask(record2, &seq));
        EXPECT_TRUE(k.postTask(record1, &seq));
        k.postTask(stopKernel, &seq);
        k.run();
    });
    EXPECT_EQ(seq.order, (std::vector<int>{1, 2, 1}));
}

TEST_F(TinyosFixture, QueueOverflowReturnsFalse)
{
    runApp([&](Kernel &k) {
        Seq seq;
        bool full = false;
        for (std::uint32_t i = 0; i < Kernel::kQueueSlots + 2; ++i) {
            if (!k.postTask(record1, &seq))
                full = true;
        }
        EXPECT_TRUE(full);
        EXPECT_EQ(k.pendingTasks(), Kernel::kQueueSlots);
    });
}

namespace {

struct TimerProbe {
    Kernel *k = nullptr;
    board::Board *b = nullptr;
    int fires = 0;
    TimeNs lastFire = 0;
    TimeNs minGap = ~TimeNs(0);
};

void
onTick(void *arg)
{
    auto *p = static_cast<TimerProbe *>(arg);
    const TimeNs now = p->b->now();
    if (p->fires > 0)
        p->minGap = std::min(p->minGap, now - p->lastFire);
    p->lastFire = now;
    if (++p->fires >= 5)
        p->k->stop();
}

} // namespace

TEST_F(TinyosFixture, TimerFiresPeriodically)
{
    TimerProbe probe;
    runApp([&](Kernel &k) {
        probe.k = &k;
        probe.b = b.get();
        ASSERT_GE(k.startTimer(10 * kNsPerMs, onTick, &probe), 0);
        k.run();
    });
    EXPECT_EQ(probe.fires, 5);
    // Coalescing semantics: fires are at least a period apart.
    EXPECT_GE(probe.minGap, 10 * kNsPerMs);
}

TEST_F(TinyosFixture, TimerSlotsExhaust)
{
    TimerProbe probe;
    runApp([&](Kernel &k) {
        probe.k = &k;
        probe.b = b.get();
        for (std::uint32_t i = 0; i < Kernel::kMaxTimers; ++i)
            EXPECT_GE(k.startTimer(kNsPerMs, onTick, &probe), 0);
        EXPECT_EQ(k.startTimer(kNsPerMs, onTick, &probe), -1);
    });
}

TEST_F(TinyosFixture, StopTimerPreventsFires)
{
    TimerProbe probe;
    runApp([&](Kernel &k) {
        probe.k = &k;
        probe.b = b.get();
        const int id = k.startTimer(5 * kNsPerMs, onTick, &probe);
        k.stopTimer(id);
        // Idle a while; nothing should fire. Stop via a posted task.
        Seq seq;
        seq.k = &k;
        b->charge(50000);
        k.postTask(stopKernel, &seq);
        k.run();
    });
    EXPECT_EQ(probe.fires, 0);
}

namespace {

struct SenseProbe {
    Kernel *k = nullptr;
    std::int32_t moisture = -1;
    std::int32_t temp = -1;
    bool sendDone = false;
};

void onTempDone(void *arg);

void
onMoistureDone(void *arg)
{
    auto *p = static_cast<SenseProbe *>(arg);
    EXPECT_NE(p->moisture, -1); // filled before the completion event
    p->k->requestTemp(&p->temp, onTempDone, arg);
}

void
onSendDone(void *arg)
{
    auto *p = static_cast<SenseProbe *>(arg);
    p->sendDone = true;
    p->k->stop();
}

void
onTempDone(void *arg)
{
    auto *p = static_cast<SenseProbe *>(arg);
    EXPECT_NE(p->temp, -1);
    static const std::uint8_t payload[2] = {0xAB, 0xCD};
    p->k->sendAM(payload, sizeof(payload), onSendDone, arg);
}

} // namespace

TEST_F(TinyosFixture, SplitPhaseSensingAndSend)
{
    SenseProbe probe;
    runApp([&](Kernel &k) {
        probe.k = &k;
        k.requestMoisture(&probe.moisture, onMoistureDone, &probe);
        k.run();
    });
    EXPECT_TRUE(probe.sendDone);
    EXPECT_GT(probe.moisture, 0);
    ASSERT_EQ(b->radio().sentCount(), 1u);
    EXPECT_EQ(b->radio().packets()[0].payload[0], 0xAB);
}
