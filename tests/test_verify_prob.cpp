/**
 * @file
 * Tests for the probabilistic timing analysis (ticsetap direction):
 * closed-form known-answer tests for the Pmf arithmetic, environment
 * model sanity, the synthetic completion/freshness estimators, the
 * cross-validation gate (including a deliberately miscalibrated model
 * that must fail the p95 gate with a findings entry naming the pair),
 * and the end-to-end capacitor-sizing SLO query confirmed by a sweep.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "device/costs.hpp"
#include "support/stats.hpp"
#include "sweep/sweep.hpp"
#include "verify/envmodel.hpp"
#include "verify/model.hpp"
#include "verify/prob.hpp"
#include "verify/probcrossval.hpp"

using namespace ticsim;
using namespace ticsim::verify;

namespace {

const device::CostModel kCosts{};

/** A minimal n-region model with uniform region size. */
ProgramModel
syntheticModel(std::size_t regions, Cycles cyclesEach)
{
    ProgramModel m;
    m.app = "synthetic";
    m.runtime = "test";
    m.calibrated = true;
    for (std::size_t i = 0; i < regions; ++i) {
        RegionNode r;
        r.index = i;
        r.anchor = "region#" + std::to_string(i);
        r.cycles = cyclesEach;
        r.startCycle = static_cast<Cycles>(i) * cyclesEach;
        m.regions.push_back(std::move(r));
        m.totalCycles += cyclesEach;
    }
    return m;
}

SiteEvent
site(mem::SideEventKind kind, const char *id, std::uint64_t u0,
     Cycles atCycle)
{
    SiteEvent s;
    s.kind = kind;
    s.id = id;
    s.u0 = u0;
    s.atCycle = atCycle;
    return s;
}

} // namespace

// ---- Pmf known-answer tests ------------------------------------------------

TEST(Pmf, DeltaConvolutionIsDelta)
{
    const Pmf sum = Pmf::delta(3.0).convolve(Pmf::delta(4.0));
    EXPECT_NEAR(sum.totalMass(), 1.0, 1e-12);
    EXPECT_NEAR(sum.mean(), 7.0, 1e-12);
    EXPECT_NEAR(sum.variance(), 0.0, 1e-9);
    // One point of support: every percentile is the point itself.
    EXPECT_DOUBLE_EQ(sum.p50(), 7.0);
    EXPECT_DOUBLE_EQ(sum.p99(), 7.0);
    EXPECT_DOUBLE_EQ(sum.minValue(), 7.0);
    EXPECT_DOUBLE_EQ(sum.maxValue(), 7.0);
}

TEST(Pmf, GeometricMeanAndVariance)
{
    // Untruncated closed forms: mean (1-s)/s, variance (1-s)/s^2.
    const double s = 0.25;
    const Pmf k = Pmf::geometric(s, 10000);
    EXPECT_NEAR(k.totalMass(), 1.0, 1e-12);
    EXPECT_NEAR(k.mean(), (1.0 - s) / s, 1e-6);
    EXPECT_NEAR(k.variance(), (1.0 - s) / (s * s), 1e-4);
    // P[K=0] = s (bucket-mean resolution leaves ~1e-10 slack).
    EXPECT_NEAR(k.cdfAt(0.0), s, 1e-6);
}

TEST(Pmf, GeometricTruncationKeepsTailMass)
{
    const Pmf k = Pmf::geometric(0.5, 3);
    EXPECT_NEAR(k.totalMass(), 1.0, 1e-12);
    // 1/2, 1/4, 1/8 at 0..2 and the remaining 1/8 parked at 3.
    EXPECT_NEAR(k.cdfAt(2.0), 0.875, 1e-12);
    EXPECT_NEAR(k.maxValue(), 3.0, 1e-12);
}

TEST(Pmf, ExponentialPreservesMean)
{
    const double mean = 80e6;
    const Pmf e = Pmf::exponential(mean, 64);
    EXPECT_NEAR(e.totalMass(), 1.0, 1e-12);
    // Quantile-atom discretization keeps the mean within a few
    // percent; the last atom carries the conditional tail median.
    EXPECT_NEAR(e.mean(), mean, 0.05 * mean);
    EXPECT_NEAR(e.percentile(0.5), mean * std::log(2.0),
                0.1 * mean * std::log(2.0));
}

TEST(Pmf, PercentilesAgreeWithDistributionOnSharedBuckets)
{
    // Same samples pushed through both types: the Pmf reports the
    // same bucket-midpoint percentiles as support/stats.hpp's
    // Distribution because the two share one bucket layout.
    Distribution d;
    Pmf p;
    std::uint64_t x = 88172645463325252ull; // deterministic xorshift
    std::vector<double> vals;
    for (int i = 0; i < 1000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        vals.push_back(1.0 + static_cast<double>(x % 1000000));
    }
    for (double v : vals) {
        d.sample(v);
        p.add(v, 1.0 / static_cast<double>(vals.size()));
    }
    EXPECT_DOUBLE_EQ(p.p50(), d.p50());
    EXPECT_DOUBLE_EQ(p.p95(), d.p95());
    EXPECT_DOUBLE_EQ(p.p99(), d.p99());
}

TEST(Pmf, ScaledAndMixtureArithmetic)
{
    const Pmf p = Pmf::delta(10.0, 0.5).scaled(3.0);
    EXPECT_NEAR(p.mean(), 30.0, 1e-12);
    EXPECT_NEAR(p.totalMass(), 0.5, 1e-12);

    Pmf mix = Pmf::delta(1.0, 0.25);
    mix.mixIn(Pmf::delta(5.0), 0.75);
    EXPECT_NEAR(mix.totalMass(), 1.0, 1e-12);
    EXPECT_NEAR(mix.mean(), 0.25 * 1.0 + 0.75 * 5.0, 1e-12);
}

// ---- environment models ----------------------------------------------------

TEST(EnvModel, PatternEnvIsDeterministic)
{
    const EnvModel env = patternEnv(30 * kNsPerMs, 0.6, kCosts, 300);
    // 18 ms on at 1 MHz, 12 ms off; both are point masses.
    EXPECT_NEAR(env.windowCycles.mean(), 18000.0, 1e-9);
    EXPECT_NEAR(env.windowCycles.variance(), 0.0, 1e-6);
    EXPECT_NEAR(env.outageNs.mean(), 12e6, 1e-3);
    EXPECT_EQ(env.maxOutages, 300u);
}

TEST(EnvModel, StochasticWindowGrowsWithCapacitance)
{
    StochasticEnvParams small;
    small.capacitanceF = 1e-6;
    StochasticEnvParams big;
    big.capacitanceF = 4e-6;
    const EnvModel se = stochasticEnv(small, kCosts, 300);
    const EnvModel be = stochasticEnv(big, kCosts, 300);
    // A bigger buffer rides out more harvester-off intervals, so its
    // powered windows chain longer before a fatal off.
    EXPECT_GT(be.windowCycles.mean(), se.windowCycles.mean());
    // Every death pays at least the off remainder; the smaller cap
    // recharges faster, so its outages are no longer than the big's.
    EXPECT_GT(se.outageNs.mean(), 0.0);
    EXPECT_LE(se.outageNs.mean(), be.outageNs.mean() + 1.0);
}

// ---- completion-time model on synthetic programs ---------------------------

TEST(CompletionTime, FitsFirstWindowExactly)
{
    // Two 4000-cycle regions against an 18000-cycle window: the run
    // starts at the window top and never fails.
    const auto m = syntheticModel(2, 4000);
    const EnvModel env = patternEnv(30 * kNsPerMs, 0.6, kCosts, 300);
    const TimingEstimate est = completionTime(m, env, kCosts);
    EXPECT_NEAR(est.pNonterm, 0.0, 1e-12);
    EXPECT_NEAR(est.meanOutages, 0.0, 1e-9);
    // Elapsed = pure work at 1 us per cycle.
    EXPECT_NEAR(est.completionNs.mean(), 8000e3, 1.0);
    EXPECT_NEAR(est.completionNs.variance(), 0.0, 1e-3);
}

TEST(CompletionTime, SpillIntoSecondWindowPaysOneOutage)
{
    // Three regions of 8000 cycles against an 18000-cycle window: the
    // third region starts at position 16000 + 2 * reentry and cannot
    // fit, so exactly one outage and one re-entry are paid.
    const auto m = syntheticModel(3, 8000);
    const EnvModel env = patternEnv(30 * kNsPerMs, 0.6, kCosts, 300);
    const TimingEstimate est = completionTime(m, env, kCosts);
    EXPECT_NEAR(est.pNonterm, 0.0, 1e-12);
    EXPECT_NEAR(est.meanOutages, 1.0, 1e-9);
    EXPECT_GT(est.completionNs.mean(), 24000e3 + 12e6 - 1.0);
}

TEST(CompletionTime, OversizedRegionNeverTerminates)
{
    const auto m = syntheticModel(1, 20000); // 20423 > 18000
    const EnvModel env = patternEnv(30 * kNsPerMs, 0.6, kCosts, 300);
    const TimingEstimate est = completionTime(m, env, kCosts);
    EXPECT_GT(est.pNonterm, 0.999);
}

// ---- freshness-violation probability ---------------------------------------

TEST(Freshness, UnguardedCrossRegionUseEarnsOutageMass)
{
    // assign in region 0, use in region 1 with a lifetime shorter
    // than the 12 ms outage: P[violation] is exactly P[an outage
    // lands between the two], here the chance region 1 fails at
    // least once.
    auto m = syntheticModel(2, 12000);
    m.regions[0].sites.push_back(site(
        mem::SideEventKind::TimedAssign, "sensor", 0, 11000));
    m.regions[1].sites.push_back(site(
        mem::SideEventKind::TimedUse, "sensor",
        5 * kNsPerMs, 13000));
    const EnvModel env = patternEnv(30 * kNsPerMs, 0.6, kCosts, 300);
    const auto est = freshnessViolations(m, env, kCosts);
    ASSERT_EQ(est.size(), 1u);
    EXPECT_EQ(est[0].subject, "sensor");
    EXPECT_EQ(est[0].sites, 1u);
    EXPECT_GT(est[0].pViolation, 0.0);
    EXPECT_LE(est[0].pViolation, 1.0);
}

TEST(Freshness, GuardedUseIsNotFlagged)
{
    auto m = syntheticModel(2, 12000);
    m.regions[0].sites.push_back(site(
        mem::SideEventKind::TimedAssign, "sensor", 0, 11000));
    m.regions[1].sites.push_back(site(
        mem::SideEventKind::TimedCheck, "sensor", 0, 12500));
    m.regions[1].sites.push_back(site(
        mem::SideEventKind::TimedUse, "sensor",
        5 * kNsPerMs, 13000));
    const EnvModel env = patternEnv(30 * kNsPerMs, 0.6, kCosts, 300);
    EXPECT_TRUE(freshnessViolations(m, env, kCosts).empty());
}

// ---- the cross-validation gate ---------------------------------------------

namespace {

/** A synthetic row whose static and simulated sides agree. */
ProbGateRow
calibratedRow()
{
    ProbGateRow row;
    row.app = "AR";
    row.runtime = "TICS";
    row.env = "pattern:30:0.6";
    row.staticP50Ms = 38.7;
    row.staticP95Ms = 38.7;
    row.staticP99Ms = 38.7;
    row.simCells = 16;
    row.simCompleted = 16;
    row.simP50Ms = 38.5;
    row.simP95Ms = 38.5;
    row.simP99Ms = 38.5;
    return row;
}

} // namespace

TEST(ProbGate, CalibratedRowPasses)
{
    ProbGateRow row = calibratedRow();
    gateProbRow(row, ProbGateTolerance{});
    EXPECT_TRUE(row.gatePassed);
    EXPECT_EQ(row.gateKind, "percentiles");
    EXPECT_TRUE(row.failedPercentile.empty());
}

TEST(ProbGate, MiscalibratedModelFailsP95WithNamedFinding)
{
    // A model overestimating the tail by 4x must fail the p95 gate
    // and produce a findings entry naming the pair and percentile.
    ProbGateRow row = calibratedRow();
    row.app = "BC";
    row.runtime = "Alpaca-like";
    row.staticP95Ms = 4.0 * row.simP95Ms;
    row.staticP99Ms = 4.0 * row.simP99Ms;
    gateProbRow(row, ProbGateTolerance{});
    EXPECT_FALSE(row.gatePassed);
    EXPECT_EQ(row.failedPercentile, "p95");
    EXPECT_GT(row.worstRel, ProbGateTolerance{}.p95);

    const Finding f = probGateFinding(row);
    EXPECT_EQ(f.analysis, "prob-crossval");
    EXPECT_EQ(f.app, "BC");
    EXPECT_EQ(f.runtime, "Alpaca-like");
    EXPECT_EQ(f.anchor, "p95");
    EXPECT_NE(f.detail.find("p95"), std::string::npos);
}

TEST(ProbGate, OrderStatisticBandAbsorbsSamplingNoise)
{
    // A fat static tail whose order-statistic band still covers the
    // simulated sample maximum passes, even though the nominal p95
    // deviates far beyond tolerance.
    ProbGateRow row = calibratedRow();
    row.staticP95Ms = 104.9; // nominal tail, far from sim 38.5
    row.staticLoP95Ms = 24.0;
    row.staticHiP95Ms = 110.0;
    gateProbRow(row, ProbGateTolerance{});
    EXPECT_TRUE(row.gatePassed);
    // Only the degenerate p50 band contributes its tiny deviation;
    // the p95 point sits inside its band and adds none.
    EXPECT_LT(row.worstRel, 0.01);

    // ...but a simulated value outside the band by more than the
    // tolerance still fails.
    ProbGateRow bad = calibratedRow();
    bad.staticP95Ms = 165.0;
    bad.staticLoP95Ms = 160.0;
    bad.staticHiP95Ms = 170.0;
    gateProbRow(bad, ProbGateTolerance{});
    EXPECT_FALSE(bad.gatePassed);
    EXPECT_EQ(bad.failedPercentile, "p95");
}

TEST(ProbGate, NontermVerdictRequiresZeroCompletions)
{
    ProbGateRow row = calibratedRow();
    row.pNonterm = 1.0;
    row.simCompleted = 0;
    gateProbRow(row, ProbGateTolerance{});
    EXPECT_TRUE(row.gatePassed);
    EXPECT_EQ(row.gateKind, "nonterm");

    row.simCompleted = 3;
    gateProbRow(row, ProbGateTolerance{});
    EXPECT_FALSE(row.gatePassed);
    EXPECT_EQ(row.failedPercentile, "completion");
}

TEST(ProbGate, IncompleteSimulationFailsTerminatingRow)
{
    ProbGateRow row = calibratedRow();
    row.simCompleted = 12; // 4 of 16 cells starved
    gateProbRow(row, ProbGateTolerance{});
    EXPECT_FALSE(row.gatePassed);
    EXPECT_EQ(row.failedPercentile, "completion");
}

// ---- capacitor sizing, confirmed by simulation -----------------------------

TEST(CapacitorSizing, SweepConfirmsSloBoundary)
{
    // The acceptance configuration: BC under TICS against the
    // stochastic supply, "95% of completions within 155 ms". The
    // static query must return a capacitance the sweep confirms
    // meets the SLO while one grid step smaller fails it.
    ProbCrossValConfig cfg;
    const ProgramModel model = recoverSweepPair(cfg, "BC", "TICS");
    ASSERT_TRUE(model.calibrated);

    SloQuery q;
    q.slo = 0.95;
    q.deadlineNs = 155e6;
    const CapacitorSizing sized = sizeCapacitor(
        model, StochasticEnvParams{}, kCosts, q, CapacitorGrid{},
        cfg.rebootLimit);
    ASSERT_TRUE(sized.feasible);
    ASSERT_GE(sized.curve.size(), 2u);
    EXPECT_GE(sized.pOnTime, q.slo);
    // The grid is geometric from 0.5 uF with factor 1.5.
    const double stepSmaller = sized.capacitanceF / 1.5;
    EXPECT_NEAR(sized.capacitanceF, 5.6953125e-6, 1e-12);

    // Simulate both candidate capacitances over the committed seeds.
    sweep::SweepConfig sc;
    sc.grid.apps = {"BC"};
    sc.grid.runtimes = {"TICS"};
    sweep::SupplyAxis sto;
    sto.kind = sweep::SupplyKind::Stochastic;
    sc.grid.supplies = {sto};
    sc.grid.capsUf = {stepSmaller * 1e6, sized.capacitanceF * 1e6};
    sc.grid.segments = {256};
    sc.grid.seeds = cfg.seeds;
    sc.useCache = cfg.useCache;
    sc.cacheDir = cfg.cacheDir;
    const sweep::SweepResult sim = sweep::runSweep(sc);

    std::uint64_t okFound = 0, nFound = 0, okSmall = 0, nSmall = 0;
    for (const auto &c : sim.cells) {
        const bool found =
            std::fabs(c.cell.capUf - sized.capacitanceF * 1e6) < 1e-9;
        const bool onTime =
            c.result.completed &&
            static_cast<double>(c.result.elapsedNs) <= q.deadlineNs;
        (found ? nFound : nSmall) += 1;
        (found ? okFound : okSmall) += onTime ? 1 : 0;
    }
    ASSERT_EQ(nFound, cfg.seeds.size());
    ASSERT_EQ(nSmall, cfg.seeds.size());
    const double n = static_cast<double>(cfg.seeds.size());
    EXPECT_GE(static_cast<double>(okFound) / n, q.slo);
    EXPECT_LT(static_cast<double>(okSmall) / n, q.slo);
}
