/**
 * @file
 * Unit tests for the support substrate: RNG determinism and
 * distributions, statistics, table/CSV formatting, units, and the
 * Fig. 10 effort metrics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "harness/effort.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

using namespace ticsim;

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
    EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
    EXPECT_EQ(r.range(5, 5), 5);
    EXPECT_EQ(r.range(5, 4), 5); // degenerate clamps to lo
}

TEST(Rng, GaussianMoments)
{
    Rng r(11);
    double sum = 0, sumSq = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = r.gaussian(10.0, 2.0);
        sum += v;
        sumSq += v * v;
    }
    const double mean = sum / n;
    const double var = sumSq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ExponentialMean)
{
    Rng r(13);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(Rng, ForkIndependentButDeterministic)
{
    Rng a(5);
    Rng fork1 = a.fork();
    Rng b(5);
    Rng fork2 = b.fork();
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(fork1.next(), fork2.next());
}

TEST(Distribution, TracksMoments)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    for (const double v : {2.0, 4.0, 6.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 6.0);
    EXPECT_NEAR(d.stddev(), 2.0, 1e-9);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
}

TEST(Distribution, StddevStableAtNsScale)
{
    // Regression: virtual-time samples sit near 1e15 ns with a small
    // spread. The naive (sumSq - sum^2/n)/(n-1) formulation cancels
    // catastrophically there (sumSq ~ 1e31 vs spread^2 ~ 1e6) and
    // returned 0 or NaN; Welford's update keeps full precision.
    Distribution d;
    const double base = 1.0e15; // ~11.5 days in ns
    for (const double off : {-300.0, -100.0, 100.0, 300.0})
        d.sample(base + off);
    EXPECT_DOUBLE_EQ(d.mean(), base);
    // Exact sample stddev of {-300,-100,100,300} is sqrt(200000/3)*... :
    // variance = (90000+10000+10000+90000)/3 = 200000/3.
    EXPECT_NEAR(d.stddev(), std::sqrt(200000.0 / 3.0), 1e-3);
}

TEST(Distribution, StddevLargeCountNsScale)
{
    Distribution d;
    const double base = 5.0e14;
    for (int i = 0; i < 10000; ++i)
        d.sample(base + (i % 2 ? 1000.0 : -1000.0));
    EXPECT_NEAR(d.mean(), base, 1.0);
    EXPECT_NEAR(d.stddev(), 1000.0, 1.0);
}

TEST(Distribution, PercentilesOnKnownData)
{
    Distribution d;
    for (int i = 1; i <= 100; ++i)
        d.sample(static_cast<double>(i));
    // Log-bucketed histogram: nearest-rank within a few % of exact.
    EXPECT_NEAR(d.p50(), 50.0, 4.0);
    EXPECT_NEAR(d.p95(), 95.0, 6.0);
    EXPECT_NEAR(d.p99(), 99.0, 6.0);
    // Percentiles are clamped into the observed range.
    EXPECT_GE(d.p50(), d.min());
    EXPECT_LE(d.p99(), d.max());
    EXPECT_LE(d.p50(), d.p95());
    EXPECT_LE(d.p95(), d.p99());
}

TEST(Distribution, PercentilesHeavyTail)
{
    // 99 fast samples and one huge outlier: p50/p95 must ignore the
    // tail, p99 (nearest-rank over 100 samples) lands on rank 99.
    Distribution d;
    for (int i = 0; i < 99; ++i)
        d.sample(10.0);
    d.sample(1.0e9);
    EXPECT_NEAR(d.p50(), 10.0, 1.0);
    EXPECT_NEAR(d.p95(), 10.0, 1.0);
    EXPECT_NEAR(d.p99(), 10.0, 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 1.0e9);
}

TEST(Distribution, PercentileEdgeCases)
{
    Distribution empty;
    EXPECT_EQ(empty.p50(), 0.0); // no samples: defined as zero
    Distribution one;
    one.sample(42.0);
    EXPECT_DOUBLE_EQ(one.p50(), 42.0);
    EXPECT_DOUBLE_EQ(one.p99(), 42.0);
    Distribution zeros; // non-positive samples land in bucket 0
    zeros.sample(0.0);
    zeros.sample(-5.0);
    EXPECT_LE(zeros.p50(), 0.0);
}

TEST(StatGroup, CountersAndLookup)
{
    StatGroup g("grp");
    ++g.counter("a");
    g.counter("a") += 4;
    EXPECT_EQ(g.counterValue("a"), 5u);
    EXPECT_EQ(g.counterValue("missing"), 0u);
    EXPECT_TRUE(g.hasCounter("a"));
    EXPECT_FALSE(g.hasCounter("b"));
    g.setScalar("x", 2.5);
    EXPECT_DOUBLE_EQ(g.scalarValue("x"), 2.5);
    g.resetAll();
    EXPECT_EQ(g.counterValue("a"), 0u);
    EXPECT_DOUBLE_EQ(g.scalarValue("x"), 0.0);
}

TEST(StatGroup, DumpContainsNames)
{
    StatGroup g("device");
    ++g.counter("events");
    g.distribution("lat").sample(3.0);
    std::ostringstream os;
    g.dump(os);
    const auto s = os.str();
    EXPECT_NE(s.find("device.events"), std::string::npos);
    EXPECT_NE(s.find("device.lat"), std::string::npos);
}

TEST(Table, AlignsAndSeparates)
{
    Table t("demo");
    t.header({"col", "value"});
    t.row().cell("a").cell(std::uint64_t{1});
    t.separator();
    t.row().cell("bee").cell(2.5, 1);
    std::ostringstream os;
    t.print(os);
    const auto s = os.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("| a   |"), std::string::npos);
    EXPECT_NE(s.find("2.5"), std::string::npos);
}

TEST(Csv, QuotesSpecials)
{
    std::ostringstream os;
    CsvWriter w(os);
    w.row({"plain", "with,comma", "with\"quote"});
    EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Units, Conversions)
{
    EXPECT_EQ(nsToUs(1500), 1u);
    EXPECT_DOUBLE_EQ(nsToSec(kNsPerSec), 1.0);
    EXPECT_EQ(secToNs(2.0), 2 * kNsPerSec);
    EXPECT_EQ(secToNs(-1.0), 0u);
    EXPECT_EQ(msToNs(3), 3 * kNsPerMs);
    EXPECT_EQ(usToNs(3), 3 * kNsPerUs);
}

TEST(Effort, CountsLinesAndDecisions)
{
    const auto m = harness::analyzeSource(
        "int main() {\n"
        "  if (a && b) { }\n"
        "\n"
        "  for (;;) { while (x) { } }\n"
        "}\n",
        2, 3);
    EXPECT_EQ(m.loc, 4u);                 // blank line excluded
    EXPECT_EQ(m.decisionPoints, 4u);      // if, &&, for, while
    EXPECT_EQ(m.elements, 2u);
    EXPECT_EQ(m.sharedState, 3u);
}

TEST(Effort, WordBoundariesRespected)
{
    // "iffy" and "forward" must not count as if/for.
    const auto m = harness::analyzeSource("iffy forward whiled\n", 1, 0);
    EXPECT_EQ(m.decisionPoints, 0u);
}
