/**
 * @file
 * Integration tests of the TICS runtime's protocol guarantees:
 * write-after-read rollback, undo-log dedup and forced checkpoints,
 * atomic windows, crash-during-checkpoint commit safety, manual
 * checkpoints, and restore-time starvation behaviour.
 */

#include <gtest/gtest.h>

#include "board/board.hpp"
#include "mem/nv.hpp"
#include "runtimes/mementos.hpp"
#include "tics/runtime.hpp"

using namespace ticsim;

namespace {

std::unique_ptr<board::Board>
makePattern(TimeNs period, double duty, board::BoardConfig cfg = {})
{
    return std::make_unique<board::Board>(
        cfg, std::make_unique<energy::PatternSupply>(period, duty),
        std::make_unique<timekeeper::PerfectTimekeeper>());
}

std::unique_ptr<board::Board>
makeCont()
{
    return std::make_unique<board::Board>(
        board::BoardConfig{}, std::make_unique<energy::ContinuousSupply>(),
        std::make_unique<timekeeper::PerfectTimekeeper>());
}

} // namespace

TEST(TicsRuntime, WarViolationRolledBack)
{
    // The paper's Fig. 3a: len = len + 1 after a checkpoint must not
    // double-apply when re-executed.
    auto b = makeCont();
    tics::TicsConfig cfg;
    cfg.policy = tics::PolicyKind::None;
    tics::TicsRuntime rt(cfg);
    mem::nv<int> len(b->nvram(), "len", 10);
    int attempt = 0; // host-side, survives "failures"

    const auto res = b->run(
        rt,
        [&] {
            rt.checkpointNow();
            len = len.get() + 1;
            if (++attempt < 3) {
                // Simulated brown-out after the unsafe write.
                b->ctx().exitWith(context::ExitReason::PowerFail);
            }
        },
        kNsPerSec);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(attempt, 3);
    // Without the undo log this would be 13; TICS makes it 11.
    EXPECT_EQ(len.get(), 11);
}

TEST(TicsRuntime, PreFirstCheckpointWritesAlsoRollBack)
{
    auto b = makeCont();
    tics::TicsConfig cfg;
    cfg.policy = tics::PolicyKind::None;
    tics::TicsRuntime rt(cfg);
    mem::nv<int> x(b->nvram(), "x", 5);
    int attempt = 0;
    const auto res = b->run(
        rt,
        [&] {
            x = x.get() + 1; // before ANY checkpoint exists
            if (++attempt < 3)
                b->ctx().exitWith(context::ExitReason::PowerFail);
        },
        kNsPerSec);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(x.get(), 6); // not 8
}

TEST(TicsRuntime, UndoLogDedupPerEpoch)
{
    auto b = makeCont();
    tics::TicsConfig cfg;
    cfg.policy = tics::PolicyKind::None;
    tics::TicsRuntime rt(cfg);
    mem::nv<int> x(b->nvram(), "x");
    b->run(
        rt,
        [&] {
            rt.checkpointNow();
            for (int i = 0; i < 50; ++i)
                x = i; // same location: one undo entry per epoch
            rt.checkpointNow();
            x = 99; // fresh epoch: one more entry
        },
        kNsPerSec);
    EXPECT_EQ(rt.stats().counterValue("undoAppends"), 2u);
    EXPECT_EQ(rt.stats().counterValue("undoDedupHits"), 49u);
    EXPECT_EQ(x.get(), 99);
}

TEST(TicsRuntime, UndoLogFullForcesCheckpoint)
{
    auto b = makeCont();
    tics::TicsConfig cfg;
    cfg.policy = tics::PolicyKind::None;
    cfg.undoLogBytes = 64;
    cfg.undoLogEntries = 8;
    tics::TicsRuntime rt(cfg);
    mem::nvArray<std::uint64_t, 64> arr(b->nvram(), "arr");
    b->run(
        rt,
        [&] {
            for (std::uint32_t i = 0; i < 64; ++i)
                arr.set(i, i); // 64 distinct 8-byte targets
        },
        kNsPerSec);
    EXPECT_GT(rt.checkpointCount(tics::CkptCause::UndoFull), 0u);
    for (std::uint32_t i = 0; i < 64; ++i)
        EXPECT_EQ(arr.get(i), i);
}

TEST(TicsRuntime, AtomicWindowBlocksAutomaticCheckpoints)
{
    auto b = makeCont();
    tics::TicsConfig cfg;
    cfg.policy = tics::PolicyKind::EveryTrigger;
    tics::TicsRuntime rt(cfg);
    std::uint64_t inWindow = 0, outside = 0;
    b->run(
        rt,
        [&] {
            rt.beginAtomic();
            for (int i = 0; i < 5; ++i)
                rt.triggerPoint();
            inWindow = rt.checkpointsTotal();
            rt.endAtomic(/*checkpoint=*/false);
            rt.triggerPoint();
            outside = rt.checkpointsTotal();
        },
        kNsPerSec);
    EXPECT_EQ(inWindow, 0u);
    EXPECT_EQ(outside, 1u);
}

TEST(TicsRuntime, EndAtomicPlacesMandatedCheckpoint)
{
    auto b = makeCont();
    tics::TicsConfig cfg;
    cfg.policy = tics::PolicyKind::None;
    tics::TicsRuntime rt(cfg);
    b->run(
        rt,
        [&] {
            rt.beginAtomic();
            b->charge(10);
            rt.endAtomic(/*checkpoint=*/true);
        },
        kNsPerSec);
    EXPECT_EQ(rt.checkpointCount(tics::CkptCause::AtomicEnd), 1u);
}

TEST(TicsRuntime, NestedAtomicCheckpointsOnceAtOuterEnd)
{
    auto b = makeCont();
    tics::TicsConfig cfg;
    cfg.policy = tics::PolicyKind::None;
    tics::TicsRuntime rt(cfg);
    b->run(
        rt,
        [&] {
            rt.beginAtomic();
            rt.beginAtomic();
            rt.endAtomic(true); // inner: no checkpoint yet
            EXPECT_EQ(rt.checkpointsTotal(), 0u);
            rt.endAtomic(true); // outer: now
        },
        kNsPerSec);
    EXPECT_EQ(rt.checkpointsTotal(), 1u);
}

TEST(TicsRuntime, DeathDuringCheckpointKeepsOldRestorePoint)
{
    // Exhaust the supply so the brown-out lands *inside* the next
    // checkpoint's charge; the previously committed state must win.
    board::BoardConfig bcfg;
    auto b = makePattern(40 * kNsPerMs, 0.5, bcfg);
    tics::TicsConfig cfg;
    cfg.policy = tics::PolicyKind::None;
    cfg.segmentBytes = 256;
    tics::TicsRuntime rt(cfg);
    mem::nv<int> phase(b->nvram(), "phase");
    int attempts = 0; // host-side observability

    const auto res = b->run(
        rt,
        [&] {
            ++attempts;
            rt.checkpointNow();
            phase = 1;
            // First attempt: burn to 0.4 ms before the brown-out so
            // the charge inside doCheckpoint (~0.66 ms) crosses the
            // cliff mid-commit. After a restore (re-execution resumes
            // past the ++attempts), stop earlier so the retry succeeds.
            const bool firstTry =
                rt.stats().counterValue("restores") == 0;
            const TimeNs burnTo =
                firstTry ? 19600 * kNsPerUs : 15 * kNsPerMs;
            while (b->now() % (40 * kNsPerMs) < burnTo)
                b->charge(50);
            rt.checkpointNow();
            phase = 2;
        },
        kNsPerSec);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(phase.get(), 2);
    EXPECT_GE(res.reboots, 1u);
}

TEST(TicsRuntime, ManualCheckpointCountsAsManual)
{
    auto b = makeCont();
    tics::TicsConfig cfg;
    cfg.policy = tics::PolicyKind::None;
    tics::TicsRuntime rt(cfg);
    b->run(rt, [&] { rt.checkpointNow(); }, kNsPerSec);
    EXPECT_EQ(rt.checkpointCount(tics::CkptCause::Manual), 1u);
}

TEST(TicsRuntime, BoundedRestoreAvoidsStarvationWhereNaiveStarves)
{
    // The paper's headline: with a big program state and a small
    // energy burst, full-state restore exceeds the budget and the
    // naive checkpointer starves, while TICS (registers + one
    // segment) keeps making progress.
    constexpr std::uint32_t kStateWords = 1200; // 4.8 kB tracked state
    const TimeNs period = 10 * kNsPerMs;
    const double duty = 0.46; // ~4.6 ms per burst

    auto runTics = [&] {
        board::BoardConfig bcfg;
        bcfg.starvationRebootLimit = 120;
        auto b = makePattern(period, duty, bcfg);
        tics::TicsConfig cfg;
        cfg.segmentBytes = 128;
        cfg.policy = tics::PolicyKind::Timer;
        cfg.timerPeriod = 2 * kNsPerMs;
        tics::TicsRuntime rt(cfg);
        mem::nvArray<std::uint32_t, kStateWords> st(b->nvram(), "st");
        mem::nv<std::uint32_t> i(b->nvram(), "i");
        const auto res = b->run(
            rt,
            [&] {
                board::FrameGuard fg(rt, 24);
                while (i.get() < kStateWords) {
                    rt.triggerPoint();
                    st.set(i.get(), i.get());
                    i = i.get() + 1;
                    b->charge(60);
                }
            },
            20 * kNsPerSec);
        return res;
    };

    auto runNaive = [&] {
        board::BoardConfig bcfg;
        bcfg.starvationRebootLimit = 120;
        auto b = makePattern(period, duty, bcfg);
        runtimes::MementosConfig mcfg;
        mcfg.trigger = runtimes::MementosConfig::Trigger::Timer;
        mcfg.timerPeriod = 2 * kNsPerMs;
        runtimes::MementosRuntime rt(mcfg);
        mem::nvArray<std::uint32_t, kStateWords> st(b->nvram(), "st");
        mem::nv<std::uint32_t> i(b->nvram(), "i");
        rt.trackGlobals(st.raw(), kStateWords * 4);
        rt.trackGlobals(i.raw(), 4);
        const auto res = b->run(
            rt,
            [&] {
                board::FrameGuard fg(rt, 24);
                while (i.get() < kStateWords) {
                    rt.triggerPoint();
                    st.set(i.get(), i.get());
                    i = i.get() + 1;
                    b->charge(60);
                }
            },
            20 * kNsPerSec);
        return res;
    };

    const auto tics = runTics();
    EXPECT_TRUE(tics.completed);
    EXPECT_FALSE(tics.starved);

    const auto naive = runNaive();
    // Full-state checkpoint+restore (~2 x 7.5 ms for 4.8 kB) cannot
    // fit a 4.6 ms burst: no forward progress, ever.
    EXPECT_FALSE(naive.completed);
    EXPECT_TRUE(naive.starved);
}
