/**
 * @file
 * Unit tests for the energy substrate: capacitor arithmetic, every
 * harvester model, and the three supply types' brown-out/recharge
 * semantics.
 */

#include <gtest/gtest.h>

#include "energy/capacitor.hpp"
#include "energy/harvester.hpp"
#include "energy/supply.hpp"
#include "support/units.hpp"

using namespace ticsim;
using namespace ticsim::energy;

TEST(Capacitor, EnergyVoltageRoundTrip)
{
    Capacitor c(10e-6, 5.25, 3.0);
    EXPECT_NEAR(c.energy(), 0.5 * 10e-6 * 9.0, 1e-12);
    const Joules e0 = c.energy();
    c.charge(10e-6);
    EXPECT_NEAR(c.energy(), e0 + 10e-6, 1e-12);
    const Joules took = c.discharge(5e-6);
    EXPECT_NEAR(took, 5e-6, 1e-12);
    EXPECT_NEAR(c.energy(), e0 + 5e-6, 1e-12);
}

TEST(Capacitor, ClampsAtVmax)
{
    Capacitor c(10e-6, 3.0, 2.9);
    c.charge(1.0); // absurdly large
    EXPECT_NEAR(c.voltage(), 3.0, 1e-9);
}

TEST(Capacitor, RunsDryGracefully)
{
    Capacitor c(10e-6, 5.0, 1.0);
    const Joules have = c.energy();
    const Joules took = c.discharge(1.0);
    EXPECT_NEAR(took, have, 1e-12);
    EXPECT_NEAR(c.voltage(), 0.0, 1e-9);
    EXPECT_EQ(c.discharge(0.0), 0.0);
}

TEST(Capacitor, EnergyAboveFloor)
{
    Capacitor c(10e-6, 5.25, 3.0);
    EXPECT_NEAR(c.energyAbove(1.8), 0.5 * 10e-6 * (9.0 - 3.24), 1e-12);
    EXPECT_EQ(c.energyAbove(3.5), 0.0);
}

TEST(Harvester, ConstantAndSquareWave)
{
    ConstantHarvester ch(2e-3);
    EXPECT_DOUBLE_EQ(ch.power(0), 2e-3);
    EXPECT_DOUBLE_EQ(ch.power(kNsPerSec), 2e-3);

    SquareWaveHarvester sq(1e-3, 100 * kNsPerMs, 0.25);
    EXPECT_DOUBLE_EQ(sq.power(0), 1e-3);
    EXPECT_DOUBLE_EQ(sq.power(24 * kNsPerMs), 1e-3);
    EXPECT_DOUBLE_EQ(sq.power(25 * kNsPerMs), 0.0);
    EXPECT_DOUBLE_EQ(sq.power(99 * kNsPerMs), 0.0);
    EXPECT_DOUBLE_EQ(sq.power(100 * kNsPerMs), 1e-3);
}

TEST(Harvester, RfFollowsInverseSquare)
{
    RfHarvester nearRx(3.0, 1.0);
    RfHarvester farRx(3.0, 2.0);
    EXPECT_GT(nearRx.power(0), 0.0);
    EXPECT_NEAR(nearRx.power(0) / farRx.power(0), 4.0, 1e-9);
    farRx.setDistance(4.0);
    EXPECT_NEAR(nearRx.power(0) / farRx.power(0), 16.0, 1e-9);
}

TEST(Harvester, RfMagnitudeIsPlausible)
{
    // ~1 m from a 3 W EIRP 915 MHz source: order of a milliwatt.
    RfHarvester rf(3.0, 1.0);
    EXPECT_GT(rf.power(0), 0.2e-3);
    EXPECT_LT(rf.power(0), 5e-3);
}

TEST(Harvester, RfFadingVariesPerBlockDeterministically)
{
    RfHarvester rf(3.0, 1.5);
    const Watts base = rf.power(0);
    rf.setFading(3.0, 10 * kNsPerMs, 77);
    const Watts a = rf.power(1 * kNsPerMs);
    const Watts b = rf.power(15 * kNsPerMs);
    EXPECT_NE(a, b);                       // different blocks differ
    EXPECT_EQ(a, rf.power(2 * kNsPerMs));  // same block identical
    EXPECT_GT(a, base * 0.05);
    EXPECT_LT(a, base * 20.0);
}

TEST(Harvester, TraceHoldsAndRepeats)
{
    TraceHarvester tr({{0, 1e-3}, {10 * kNsPerMs, 2e-3}},
                      20 * kNsPerMs);
    EXPECT_DOUBLE_EQ(tr.power(0), 1e-3);
    EXPECT_DOUBLE_EQ(tr.power(9 * kNsPerMs), 1e-3);
    EXPECT_DOUBLE_EQ(tr.power(10 * kNsPerMs), 2e-3);
    EXPECT_DOUBLE_EQ(tr.power(19 * kNsPerMs), 2e-3);
    EXPECT_DOUBLE_EQ(tr.power(20 * kNsPerMs), 1e-3); // wrapped
}

TEST(Harvester, StochasticAlternates)
{
    StochasticHarvester st(1e-3, 50 * kNsPerMs, 50 * kNsPerMs, Rng(4));
    bool sawOn = false, sawOff = false;
    for (TimeNs t = 0; t < kNsPerSec; t += kNsPerMs) {
        const Watts p = st.power(t);
        sawOn |= p > 0.0;
        sawOff |= p == 0.0;
    }
    EXPECT_TRUE(sawOn);
    EXPECT_TRUE(sawOff);
}

TEST(Supply, ContinuousNeverDies)
{
    ContinuousSupply s;
    const auto r = s.drain(0, 3600 * kNsPerSec, 1.0);
    EXPECT_FALSE(r.died);
    EXPECT_EQ(r.ranFor, 3600 * kNsPerSec);
    EXPECT_FALSE(s.intermittent());
}

TEST(Supply, PatternDiesAtWindowEnd)
{
    PatternSupply s(100 * kNsPerMs, 0.3); // on for the first 30 ms
    auto r = s.drain(0, 10 * kNsPerMs, 1e-3);
    EXPECT_FALSE(r.died);
    r = s.drain(10 * kNsPerMs, 50 * kNsPerMs, 1e-3);
    EXPECT_TRUE(r.died);
    EXPECT_EQ(r.ranFor, 20 * kNsPerMs); // survived until t = 30 ms
    EXPECT_EQ(s.offTimeAfterDeath(30 * kNsPerMs), 70 * kNsPerMs);
}

TEST(Supply, PatternFullDutyIsContinuous)
{
    PatternSupply s(100 * kNsPerMs, 1.0);
    EXPECT_FALSE(s.intermittent());
    EXPECT_FALSE(s.drain(0, 10 * kNsPerSec, 1.0).died);
}

TEST(Supply, PatternDiesImmediatelyInOffWindow)
{
    PatternSupply s(100 * kNsPerMs, 0.3);
    const auto r = s.drain(50 * kNsPerMs, kNsPerMs, 1e-3);
    EXPECT_TRUE(r.died);
    EXPECT_EQ(r.ranFor, 0u);
}

TEST(Supply, HarvestingBrownsOutAndRecovers)
{
    HarvestingSupply::Config cfg; // 10 uF, Von 3.0, Voff 1.8
    HarvestingSupply s(cfg,
                       std::make_unique<ConstantHarvester>(0.2e-3));
    // Load 0.75 mW vs harvest 0.2 mW: net drain ~0.55 mW over the
    // 28.8 uJ usable buffer -> dies in roughly 50 ms.
    const auto r = s.drain(0, kNsPerSec, 0.75e-3);
    EXPECT_TRUE(r.died);
    EXPECT_NEAR(static_cast<double>(r.ranFor) / kNsPerMs, 52.0, 8.0);
    EXPECT_LT(s.voltage(), cfg.vOff + 0.05);
    // Recharge at 0.2 mW back to Von: ~144 ms.
    const TimeNs off = s.offTimeAfterDeath(r.ranFor);
    EXPECT_NEAR(static_cast<double>(off) / kNsPerMs, 144.0, 20.0);
    EXPECT_GE(s.voltage(), cfg.vOn - 0.01);
}

TEST(Supply, HarvestingSurvivesWithStrongSource)
{
    HarvestingSupply::Config cfg;
    HarvestingSupply s(cfg, std::make_unique<ConstantHarvester>(5e-3));
    EXPECT_FALSE(s.drain(0, kNsPerSec, 0.75e-3).died);
    EXPECT_GT(s.voltageNow(), 0.0);
}

TEST(Supply, HarvestingCapsHopelessRecharge)
{
    HarvestingSupply::Config cfg;
    cfg.maxOffTime = 100 * kNsPerMs;
    HarvestingSupply s(cfg, std::make_unique<ConstantHarvester>(0.0));
    const auto r = s.drain(0, kNsPerSec, 0.75e-3);
    ASSERT_TRUE(r.died);
    EXPECT_EQ(s.offTimeAfterDeath(r.ranFor), cfg.maxOffTime);
}
