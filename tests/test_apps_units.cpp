/**
 * @file
 * Unit tests of the application substrate: the seven bitcount methods
 * against each other and against known values, DSP helpers, the cuckoo
 * filter core (insert/lookup/eviction/partner-bucket involution), and
 * the AR dataset/golden determinism.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "apps/ar/ar_common.hpp"
#include "apps/common/cuckoo_core.hpp"
#include "apps/ar/ar_timed.hpp"
#include "apps/common/dsp.hpp"

using namespace ticsim;
using namespace ticsim::apps;

namespace {

int (*const kMethods[7])(std::uint32_t) = {
    bitcountOptimized, bitcountRecursive, bitcountNibbleLut,
    bitcountByteLut,   bitcountShift,     bitcountKernighan,
    bitcountSwar};

} // namespace

TEST(Bitcount, KnownValues)
{
    for (auto *m : kMethods) {
        EXPECT_EQ(m(0u), 0);
        EXPECT_EQ(m(1u), 1);
        EXPECT_EQ(m(0x80000000u), 1);
        EXPECT_EQ(m(0xFFFFFFFFu), 32);
        EXPECT_EQ(m(0xAAAAAAAAu), 16);
        EXPECT_EQ(m(0x0F0F0F0Fu), 16);
        EXPECT_EQ(m(0x12345678u), 13);
    }
}

TEST(Bitcount, AllMethodsAgreeOnRandomInputs)
{
    Lcg lcg(0xFEED);
    for (int i = 0; i < 2000; ++i) {
        const std::uint32_t x = lcg.next();
        const int reference = bitcountSwar(x);
        for (auto *m : kMethods)
            ASSERT_EQ(m(x), reference) << "x=" << x;
    }
}

TEST(Dsp, IsqrtExactAndFloor)
{
    EXPECT_EQ(isqrt(0), 0u);
    EXPECT_EQ(isqrt(1), 1u);
    EXPECT_EQ(isqrt(15), 3u);
    EXPECT_EQ(isqrt(16), 4u);
    EXPECT_EQ(isqrt(17), 4u);
    EXPECT_EQ(isqrt(1'000'000), 1000u);
    EXPECT_EQ(isqrt(999'999), 999u);
    for (std::uint64_t v = 0; v < 3000; ++v) {
        const std::uint64_t r = isqrt(v);
        ASSERT_LE(r * r, v);
        ASSERT_GT((r + 1) * (r + 1), v);
    }
}

TEST(Dsp, MeanAndStddev)
{
    const std::int16_t flat[4] = {5, 5, 5, 5};
    EXPECT_EQ(meanI16(flat, 4), 5);
    EXPECT_EQ(stddevI16(flat, 4), 0u);

    const std::int16_t spread[4] = {0, 0, 10, 10};
    EXPECT_EQ(meanI16(spread, 4), 5);
    EXPECT_EQ(stddevI16(spread, 4), 5u);

    EXPECT_EQ(meanI16(nullptr, 0), 0);
    EXPECT_EQ(stddevI16(flat, 1), 0u);
}

TEST(Dsp, ClassifierPicksNearerCentroid)
{
    ArModel m;
    m.centroid[0] = {1000, 10};
    m.centroid[1] = {1300, 300};
    EXPECT_EQ(classify(m, {1010, 20}), 0);
    EXPECT_EQ(classify(m, {1290, 280}), 1);
}

TEST(Lcg, DeterministicAndResettable)
{
    Lcg a(7), b(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());
    a.reset(7);
    Lcg c(7);
    EXPECT_EQ(a.next(), c.next());
}

TEST(CuckooCore, InsertThenContains)
{
    std::vector<std::uint16_t> slots(32 * 4, 0);
    auto store = [](std::uint16_t *p, std::uint16_t v) { *p = v; };
    CuckooTable<decltype(store)> t(slots.data(), 32, 16, store);
    Lcg lcg(0x5EED);
    std::vector<std::uint32_t> keys;
    for (int i = 0; i < 40; ++i) {
        const auto k = lcg.next();
        keys.push_back(k);
        EXPECT_TRUE(t.insert(k));
    }
    for (const auto k : keys)
        EXPECT_TRUE(t.contains(k));
}

TEST(CuckooCore, AbsentKeysMostlyAbsent)
{
    std::vector<std::uint16_t> slots(64 * 4, 0);
    auto store = [](std::uint16_t *p, std::uint16_t v) { *p = v; };
    CuckooTable<decltype(store)> t(slots.data(), 64, 16, store);
    Lcg lcg(1);
    for (int i = 0; i < 60; ++i)
        t.insert(lcg.next());
    // Different key universe: false positives must be rare (it is a
    // filter, not a set — a few fingerprint collisions are expected).
    Lcg other(0x900D);
    int falsePositives = 0;
    for (int i = 0; i < 1000; ++i) {
        if (t.contains(other.next()))
            ++falsePositives;
    }
    EXPECT_LT(falsePositives, 20);
}

TEST(CuckooCore, EvictionKeepsEarlierKeysFindable)
{
    // Overfill one bucket's orbit to force kicks.
    std::vector<std::uint16_t> slots(8 * 4, 0);
    auto store = [](std::uint16_t *p, std::uint16_t v) { *p = v; };
    CuckooTable<decltype(store)> t(slots.data(), 8, 32, store);
    std::vector<std::uint32_t> inserted;
    Lcg lcg(3);
    for (int i = 0; i < 24; ++i) {
        const auto k = lcg.next();
        if (t.insert(k))
            inserted.push_back(k);
    }
    EXPECT_GT(inserted.size(), 16u); // evictions happened and worked
    for (const auto k : inserted)
        EXPECT_TRUE(t.contains(k));
}

TEST(CuckooCore, GoldenIsDeterministic)
{
    CuckooParams p;
    const auto a = cuckooGolden(p);
    const auto b = cuckooGolden(p);
    EXPECT_EQ(a.inserted, b.inserted);
    EXPECT_EQ(a.recovered, b.recovered);
    EXPECT_GT(a.inserted, 0u);
    EXPECT_GE(a.recovered, a.inserted); // found >= placed (collisions
                                        // can only add hits)
}

TEST(ArCommon, DatasetDeterministicPerSeedAndWindow)
{
    std::int16_t a[16], b[16];
    arGenWindow(1, 5, 16, a);
    arGenWindow(1, 5, 16, b);
    EXPECT_EQ(std::memcmp(a, b, sizeof(a)), 0);
    arGenWindow(2, 5, 16, b);
    EXPECT_NE(std::memcmp(a, b, sizeof(a)), 0);
}

TEST(ArCommon, MovingWindowsSwingHarder)
{
    std::int16_t stationary[16], moving[16];
    arGenWindow(7, 2, 16, stationary); // even window: stationary
    arGenWindow(7, 3, 16, moving);     // odd window: moving
    EXPECT_GT(stddevI16(moving, 16), 4 * stddevI16(stationary, 16));
}

TEST(ArCommon, GoldenClassifiesPerfectlyOnSyntheticData)
{
    ArParams p;
    const auto e = arGolden(p);
    // The synthetic regimes are well separated: the NN classifier
    // should split the windows exactly half and half.
    EXPECT_EQ(e.stationary, p.windows / 2);
    EXPECT_EQ(e.moving, p.windows / 2);
}

TEST(ArTimedHelpers, MagnitudeAndThreshold)
{
    device::AccelSample s{-3, 4, -12};
    EXPECT_EQ(accelMagnitude(s), 19);
    const std::int32_t calm[6] = {1000, 1010, 990, 1005, 995, 1000};
    const std::int32_t wild[6] = {600, 1500, 700, 1400, 800, 1600};
    EXPECT_FALSE(arWindowMoving(calm, 6));
    EXPECT_TRUE(arWindowMoving(wild, 6));
}
