/**
 * @file
 * Fault-model and crash-consistency hardening tests: CRC-32 vectors,
 * reset-pattern supply edge cases, checkpoint-area negative paths
 * (torn and corrupted commit records), undo-log record validation,
 * fault-plan round-trips, and end-to-end campaign/replay checks.
 */

#include <algorithm>
#include <cstring>
#include <gtest/gtest.h>

#include "energy/supply.hpp"
#include "fault/campaign.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "mem/nvram.hpp"
#include "support/crc32.hpp"
#include "tics/checkpoint_area.hpp"
#include "tics/undo_log.hpp"

using namespace ticsim;

// ---- CRC-32 ----------------------------------------------------------------

TEST(Crc32, MatchesIeeeCheckValue)
{
    // The standard CRC-32/IEEE check vector.
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32, ChainingEqualsOneShot)
{
    const char buf[] = "intermittent computing";
    const std::size_t n = sizeof(buf) - 1;
    const std::uint32_t oneShot = crc32(buf, n);
    const std::uint32_t chained = crc32(buf + 5, n - 5, crc32(buf, 5));
    EXPECT_EQ(chained, oneShot);
    EXPECT_NE(crc32(buf, n - 1), oneShot);
}

// ---- Reset-pattern supply edges --------------------------------------------

TEST(ScheduledSupplyEdges, ChargeEndingExactlyAtCutCompletes)
{
    energy::ScheduledSupply s({{100}, 5});
    // Half-open window: the charge that ends exactly at the cut
    // instant completes...
    const auto r1 = s.drain(0, 100, 1e-3);
    EXPECT_FALSE(r1.died);
    EXPECT_EQ(s.cutsFired(), 0u);
    // ...and the death lands on the next drain with zero progress.
    const auto r2 = s.drain(100, 50, 1e-3);
    EXPECT_TRUE(r2.died);
    EXPECT_EQ(r2.ranFor, 0);
    EXPECT_EQ(s.offTimeAfterDeath(100), 5);
    EXPECT_EQ(s.cutsFired(), 1u);
    // After the last cut the supply is continuous.
    EXPECT_FALSE(s.drain(105, 3600 * kNsPerSec, 1e-3).died);
}

TEST(ScheduledSupplyEdges, ZeroLengthOnWindowDiesImmediately)
{
    // Two cuts at the same instant: the second on-window has zero
    // length, so the reboot's very first charge dies re-entrantly.
    energy::ScheduledSupply s({{100, 100}, 5});
    EXPECT_TRUE(s.drain(50, 60, 1e-3).died); // dies at 100, ranFor 50
    const auto r = s.drain(100, 10, 1e-3);
    EXPECT_TRUE(r.died);
    EXPECT_EQ(r.ranFor, 0);
    EXPECT_EQ(s.cutsFired(), 2u);
}

TEST(ScheduledSupplyEdges, ReentrantDeathDuringBootWork)
{
    // The second cut is already past when the reboot's boot-side
    // charging probes the supply (boot work outlives the on-window).
    energy::ScheduledSupply s({{100, 130}, 5});
    EXPECT_TRUE(s.drain(0, 200, 1e-3).died);
    const auto r = s.drain(150, 20, 1e-3); // probe after the 130 cut
    EXPECT_TRUE(r.died);
    EXPECT_EQ(r.ranFor, 0);
}

TEST(PatternSupplyEdges, ChargeEndingExactlyAtWindowEndCompletes)
{
    energy::PatternSupply s(100 * kNsPerMs, 0.5);
    EXPECT_FALSE(s.drain(0, 50 * kNsPerMs, 1e-3).died);
    const auto r = s.drain(50 * kNsPerMs, 1, 1e-3);
    EXPECT_TRUE(r.died);
    EXPECT_EQ(r.ranFor, 0);
}

TEST(FaultedSupplyEdges, FirstArmedBoundaryWins)
{
    fault::FaultedSupply s(std::make_unique<energy::ContinuousSupply>(),
                           7);
    s.armCutAfter(10);
    s.armCutAfter(3); // ignored: a cut is already pending
    const auto r = s.drain(100, 50, 1e-3);
    EXPECT_TRUE(r.died);
    EXPECT_EQ(r.ranFor, 10);
    EXPECT_EQ(s.offTimeAfterDeath(110), 7);
    EXPECT_EQ(s.injectedDeaths(), 1u);
    ASSERT_EQ(s.firedAt().size(), 1u);
    EXPECT_EQ(s.firedAt()[0], 110);
}

TEST(FaultedSupplyEdges, OrganicInnerDeathBeforeCutWins)
{
    // The wrapped supply browns out at 100, before the injected cut at
    // 150: the organic death must be propagated with the inner supply's
    // own off time, not masked by the injected cut.
    fault::FaultedSupply s(
        std::make_unique<energy::ScheduledSupply>(
            energy::ResetPattern{{100}, 5}),
        777);
    s.scheduleAbsolute({150});
    const auto r = s.drain(0, 200, 1e-3);
    EXPECT_TRUE(r.died);
    EXPECT_EQ(r.ranFor, 100);
    EXPECT_EQ(s.offTimeAfterDeath(100), 5); // inner off time, not 777
    EXPECT_EQ(s.injectedDeaths(), 0u);
    EXPECT_TRUE(s.firedAt().empty());
}

TEST(FaultedSupplyEdges, AbsoluteCutExactlyOnBoundaryIsHalfOpen)
{
    fault::FaultedSupply s(std::make_unique<energy::ContinuousSupply>(),
                           7);
    s.scheduleAbsolute({200});
    EXPECT_FALSE(s.drain(0, 200, 1e-3).died);
    const auto r = s.drain(200, 10, 1e-3);
    EXPECT_TRUE(r.died);
    EXPECT_EQ(r.ranFor, 0);
    EXPECT_FALSE(s.drain(207, 3600 * kNsPerSec, 1e-3).died);
}

// ---- CheckpointArea negative paths -----------------------------------------

namespace {

/** Commit one image into the area's write slot. */
void
commitImage(tics::CheckpointArea &area, std::uint8_t fill,
            std::uint32_t size)
{
    auto &slot = area.writeSlot();
    std::memset(slot.image, fill, size);
    slot.imgLow = 0x1000;
    slot.imgSize = size;
    area.commit();
}

} // namespace

TEST(CheckpointAreaFaults, CorruptedCrcFallsBackToOlderGeneration)
{
    mem::NvRam ram(64 * 1024);
    tics::CheckpointArea area(ram, "a", 256);
    EXPECT_EQ(area.valid(), nullptr); // fresh arena: no restore point

    commitImage(area, 0x11, 64); // generation 1 -> slot 0
    commitImage(area, 0x22, 64); // generation 2 -> slot 1
    ASSERT_NE(area.valid(), nullptr);
    EXPECT_EQ(area.validIndex(), 1);
    EXPECT_EQ(area.generation(1), 2u);

    // A retention flip in the stored CRC of the fresh header demotes
    // it; recovery falls back to the older but intact generation.
    area.headerHostPtr(1)[20] ^= 0x10;
    tics::CheckpointArea::Slot *slot = area.valid();
    ASSERT_NE(slot, nullptr);
    EXPECT_EQ(area.validIndex(), 0);
    EXPECT_EQ(slot->image[0], 0x11);
    EXPECT_GE(area.rejectedHeaders(), 1u);
}

TEST(CheckpointAreaFaults, ImageCorruptionFailsTheSealedCrc)
{
    mem::NvRam ram(64 * 1024);
    tics::CheckpointArea area(ram, "a", 256);
    commitImage(area, 0x33, 128);
    ASSERT_NE(area.valid(), nullptr);
    // The header CRC chains over the image bytes, so flipping an
    // image bit (not a header bit) also invalidates the slot.
    area.writeSlot(); // (no-op, documents that we corrupt the valid one)
    auto *v = area.valid();
    v->image[100] ^= 0x01;
    EXPECT_EQ(area.valid(), nullptr);
}

TEST(CheckpointAreaFaults, TornHeaderPrefixFailsValidation)
{
    mem::NvRam ram(64 * 1024);
    tics::CheckpointArea area(ram, "a", 256);
    commitImage(area, 0x44, 64); // gen 1 -> slot 0
    commitImage(area, 0x55, 64); // gen 2 -> slot 1

    // A prefix-torn commit record: magic + generation landed, the rest
    // is stale (zero). crc is last in the layout, so any prefix tear
    // leaves a CRC that cannot match.
    std::uint8_t *h = area.headerHostPtr(1);
    std::memset(h + 8, 0, 16);
    tics::CheckpointArea::Slot *slot = area.valid();
    ASSERT_NE(slot, nullptr);
    EXPECT_EQ(area.validIndex(), 0);
    EXPECT_EQ(slot->image[0], 0x44);
}

TEST(CheckpointAreaFaults, StaleGenerationNeverShadowsFresh)
{
    mem::NvRam ram(64 * 1024);
    tics::CheckpointArea area(ram, "a", 256);
    commitImage(area, 0x66, 64);
    commitImage(area, 0x77, 64);
    commitImage(area, 0x88, 64); // gen 3 -> slot 0; stale slot 1 has gen 2
    ASSERT_NE(area.valid(), nullptr);
    EXPECT_EQ(area.generation(0), 3u);
    EXPECT_EQ(area.generation(1), 2u);
    // Corrupting the stale slot must not disturb recovery at all.
    area.headerHostPtr(1)[4] ^= 0x40;
    tics::CheckpointArea::Slot *slot = area.valid();
    ASSERT_NE(slot, nullptr);
    EXPECT_EQ(area.validIndex(), 0);
    EXPECT_EQ(slot->image[0], 0x88);
    // And the generation counter keeps climbing from the NV maximum.
    commitImage(area, 0x99, 64);
    EXPECT_EQ(area.generation(1), 4u);
}

// ---- UndoLog record validation ---------------------------------------------

TEST(UndoLogFaults, CorruptPoolRecordIsSkippedNotApplied)
{
    mem::NvRam ram(64 * 1024);
    tics::UndoLog log(ram, "u", 1024, 16);

    std::uint8_t a[8], b[8];
    std::memset(a, 0xAA, sizeof a);
    std::memset(b, 0xBB, sizeof b);
    log.append(a, sizeof a);
    log.append(b, sizeof b);
    std::memset(a, 0x01, sizeof a); // mutate after saving
    std::memset(b, 0x02, sizeof b);

    // Retention flip in the first record's saved bytes (pool offset 0).
    const auto pool = std::find_if(
        ram.regions().begin(), ram.regions().end(),
        [](const mem::NvRegion &r) { return r.name == "u.pool"; });
    ASSERT_NE(pool, ram.regions().end());
    ram.hostPtr(pool->base)[0] ^= 0x40;

    const std::uint32_t applied = log.rollback();
    EXPECT_EQ(applied, 1u);
    EXPECT_EQ(log.corruptSkipped(), 1u);
    EXPECT_EQ(a[0], 0x01); // corrupt record skipped, target untouched
    EXPECT_EQ(b[0], 0xBB); // intact record rolled back
}

// ---- Torn stores -----------------------------------------------------------

TEST(TornStore, InterleavedSmallStoreFallsBackToTornTail)
{
    fault::TornWrite t;
    t.mode = fault::TearMode::Interleaved;
    t.keepBytes = 2;
    // A 4-byte store is one atomic word: interleaving degenerates to a
    // complete write, so the fallback must garble the tail instead.
    std::uint8_t dst[4] = {0x10, 0x11, 0x12, 0x13};
    const std::uint8_t src[4] = {0x20, 0x21, 0x22, 0x23};
    fault::applyTornStore(t, dst, src, sizeof dst);
    EXPECT_EQ(dst[0], 0x20);
    EXPECT_EQ(dst[1], 0x21);
    EXPECT_NE(std::memcmp(dst, src, sizeof dst), 0); // genuinely torn
}

TEST(TornStore, InterleavedWideStoreKeepsOddWordsOld)
{
    fault::TornWrite t;
    t.mode = fault::TearMode::Interleaved;
    t.keepBytes = 0;
    std::uint8_t dst[8] = {0, 1, 2, 3, 4, 5, 6, 7};
    const std::uint8_t src[8] = {0xF0, 0xF1, 0xF2, 0xF3,
                                 0xF4, 0xF5, 0xF6, 0xF7};
    fault::applyTornStore(t, dst, src, sizeof dst);
    EXPECT_EQ(std::memcmp(dst, src, 4), 0); // word 0 committed
    EXPECT_EQ(dst[4], 4);                   // word 1 still old
    EXPECT_EQ(dst[7], 7);
}

// ---- FaultPlan parsing -----------------------------------------------------

TEST(FaultPlan, FormatParseRoundTrip)
{
    const std::string text =
        "cut@commit:3+5000;cut@t:123456;tear@hdr-store:2/prefix:8;"
        "flip@1:tics.ckpt.hdr0+4&0x40;off:9000000";
    fault::FaultPlan p;
    std::string err;
    ASSERT_TRUE(fault::FaultPlan::parse(text, p, &err)) << err;
    EXPECT_EQ(p.cuts.size(), 2u);
    EXPECT_EQ(p.tears.size(), 1u);
    EXPECT_EQ(p.flips.size(), 1u);
    EXPECT_EQ(p.offNs, 9000000);
    EXPECT_FALSE(p.cuts[0].absolute);
    EXPECT_EQ(p.cuts[0].boundary, fault::Boundary::CommitEnd);
    EXPECT_EQ(p.cuts[0].occurrence, 3u);
    EXPECT_EQ(p.cuts[0].delayNs, 5000);
    EXPECT_TRUE(p.cuts[1].absolute);
    EXPECT_EQ(p.tears[0].site, mem::StoreSite::CkptHeader);
    EXPECT_EQ(p.flips[0].region, "tics.ckpt.hdr0");
    EXPECT_EQ(p.flips[0].mask, 0x40);
    EXPECT_EQ(p.format(), text);

    fault::FaultPlan q;
    ASSERT_TRUE(fault::FaultPlan::parse(p.format(), q, &err)) << err;
    EXPECT_EQ(q.format(), p.format());
}

TEST(FaultPlan, RejectsMalformedAtoms)
{
    fault::FaultPlan p;
    std::string err;
    EXPECT_FALSE(fault::FaultPlan::parse("cut@bogus:1", p, &err));
    EXPECT_FALSE(fault::FaultPlan::parse("cut@commit:0", p, &err));
    EXPECT_FALSE(fault::FaultPlan::parse("tear@store:1", p, &err));
    EXPECT_FALSE(fault::FaultPlan::parse("flip@1:r+0&0x100", p, &err));
    EXPECT_FALSE(fault::FaultPlan::parse("zap@x:1", p, &err));
    EXPECT_FALSE(err.empty());
    // Failed parses leave the output untouched.
    EXPECT_TRUE(p.empty());
}

TEST(FaultPlan, RejectsNonDigitNumbers)
{
    // strtoull would silently accept these (leading whitespace, sign
    // wrap-around); the plan grammar must not.
    fault::FaultPlan p;
    std::string err;
    EXPECT_FALSE(fault::FaultPlan::parse("cut@t:-5", p, &err));
    EXPECT_FALSE(fault::FaultPlan::parse("cut@t: 5", p, &err));
    EXPECT_FALSE(fault::FaultPlan::parse("cut@commit:+3", p, &err));
    EXPECT_FALSE(fault::FaultPlan::parse("off:-1", p, &err));
    EXPECT_FALSE(
        fault::FaultPlan::parse("flip@1:r+0&-0x40", p, &err));
    EXPECT_TRUE(p.empty());
}

// ---- End-to-end replays ----------------------------------------------------

namespace {

fault::CampaignConfig
smallCampaign()
{
    fault::CampaignConfig cfg;
    cfg.randomSchedules = 4;
    return cfg;
}

std::string
replayVerdict(const std::string &pair, const std::string &planText)
{
    fault::FaultPlan plan;
    std::string err;
    EXPECT_TRUE(fault::FaultPlan::parse(planText, plan, &err)) << err;
    std::string verdict;
    EXPECT_TRUE(
        fault::replayPlan(smallCampaign(), pair, plan, verdict));
    return verdict;
}

} // namespace

TEST(FaultReplay, TicsSurvivesTornCommitRecord)
{
    EXPECT_EQ(replayVerdict(
                  "BC/TICS", "tear@hdr-store:1/prefix:8;off:12000000"),
              "consistent");
    EXPECT_EQ(replayVerdict("BC/TICS",
                            "tear@hdr-store:1/garbage:4;off:12000000"),
              "consistent");
}

TEST(FaultReplay, TicsSurvivesStaleSlotFlipAfterCommit)
{
    // After commit #2 the stale slot is index 0; flipping its
    // generation bit during the outage must not disturb recovery.
    EXPECT_EQ(replayVerdict(
                  "BC/TICS",
                  "cut@commit:2;flip@1:tics.ckpt.hdr0+4&0x40;"
                  "off:12000000"),
              "consistent");
}

TEST(FaultReplay, MementosGenesisSurvivesPreCheckpointCut)
{
    // Death before the first checkpoint: the fresh boot must restore
    // the genesis snapshot instead of resuming dirty globals.
    EXPECT_EQ(replayVerdict("BC/MementOS-like",
                            "cut@boot:1+200000;off:12000000"),
              "consistent");
    EXPECT_EQ(replayVerdict("Cuckoo/MementOS-like",
                            "cut@boot:1+200000;off:12000000"),
              "consistent");
}

TEST(FaultReplay, TicsSurvivesInterleavedTearOnScalarStore)
{
    // With the small-store fallback the interleave schedule now tears
    // scalar app globals for real; TICS must still recover.
    EXPECT_EQ(replayVerdict("BC/TICS",
                            "tear@store:1/interleave:0;off:12000000"),
              "consistent");
}

TEST(FaultReplay, PlainCTornStoreViolates)
{
    EXPECT_NE(replayVerdict("BC/plain-C",
                            "tear@store:1/garbage:4;off:12000000"),
              "consistent");
}

TEST(FaultReplay, UnknownPairIsReported)
{
    fault::FaultPlan plan;
    std::string verdict;
    EXPECT_FALSE(fault::replayPlan(smallCampaign(), "Nope/Nada", plan,
                                   verdict));
}

// ---- Campaign --------------------------------------------------------------

TEST(FaultCampaign, ProtectionSplitHoldsAndIsSeedDeterministic)
{
    const fault::CampaignConfig cfg = smallCampaign();
    const fault::CampaignReport r1 = fault::runCampaign(cfg);
    EXPECT_TRUE(r1.ok());
    EXPECT_FALSE(r1.truncated);
    ASSERT_EQ(r1.pairs.size(), 10u);
    for (const auto &p : r1.pairs) {
        EXPECT_TRUE(p.refCompleted) << p.app << "/" << p.runtime;
        if (p.isProtected) {
            EXPECT_EQ(p.violations, 0u) << p.app << "/" << p.runtime;
        } else {
            EXPECT_GT(p.violations, 0u) << p.app << "/" << p.runtime;
            EXPECT_FALSE(p.found.empty());
        }
        for (const auto &v : p.found) {
            EXPECT_TRUE(v.replayVerified) << v.plan;
            EXPECT_FALSE(v.kind.empty());
        }
    }

    // Same seed, same campaign — including every minimized schedule.
    const fault::CampaignReport r2 = fault::runCampaign(cfg);
    ASSERT_EQ(r2.pairs.size(), r1.pairs.size());
    EXPECT_EQ(r2.totalSchedules, r1.totalSchedules);
    EXPECT_EQ(r2.totalViolations, r1.totalViolations);
    for (std::size_t i = 0; i < r1.pairs.size(); ++i) {
        ASSERT_EQ(r2.pairs[i].found.size(), r1.pairs[i].found.size());
        for (std::size_t j = 0; j < r1.pairs[i].found.size(); ++j)
            EXPECT_EQ(r2.pairs[i].found[j].plan,
                      r1.pairs[i].found[j].plan);
    }
}
