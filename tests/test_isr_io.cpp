/**
 * @file
 * Tests for interrupt handling (paper Section 4: checkpoints disabled
 * during ISRs, implicit checkpoint after return-from-interrupt, lost
 * pending bits on power failure) and for the virtualized radio (paper
 * Section 7 future work: at-least-once, in-order, deduplicable
 * transmission across power failures).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "board/board.hpp"
#include "mem/nv.hpp"
#include "tics/io.hpp"
#include "tics/runtime.hpp"

using namespace ticsim;

namespace {

std::unique_ptr<board::Board>
contBoard()
{
    return std::make_unique<board::Board>(
        board::BoardConfig{}, std::make_unique<energy::ContinuousSupply>(),
        std::make_unique<timekeeper::PerfectTimekeeper>());
}

tics::TicsConfig
noPolicy()
{
    tics::TicsConfig cfg;
    cfg.policy = tics::PolicyKind::None;
    return cfg;
}

} // namespace

TEST(Interrupts, ServicedAtTriggerWithImplicitCheckpoint)
{
    auto b = contBoard();
    tics::TicsRuntime rt(noPolicy());
    mem::nv<int> fromIsr(b->nvram(), "fromIsr");
    b->run(
        rt,
        [&] {
            rt.raiseInterrupt([&] { fromIsr = 7; });
            EXPECT_EQ(rt.interruptsServiced(), 0u); // not yet
            rt.triggerPoint();
            EXPECT_EQ(rt.interruptsServiced(), 1u);
        },
        kNsPerSec);
    EXPECT_EQ(fromIsr.get(), 7);
    // The mandated return-from-interrupt checkpoint.
    EXPECT_EQ(rt.checkpointCount(tics::CkptCause::AtomicEnd), 1u);
}

TEST(Interrupts, NotDeliveredInsideAtomicBlocks)
{
    auto b = contBoard();
    tics::TicsRuntime rt(noPolicy());
    mem::nv<int> fromIsr(b->nvram(), "fromIsr");
    b->run(
        rt,
        [&] {
            rt.raiseInterrupt([&] { fromIsr = 1; });
            rt.beginAtomic();
            rt.triggerPoint();
            EXPECT_EQ(rt.interruptsServiced(), 0u);
            rt.endAtomic(false);
            rt.triggerPoint();
            EXPECT_EQ(rt.interruptsServiced(), 1u);
        },
        kNsPerSec);
}

TEST(Interrupts, FailureMidIsrRollsBackAndDropsDelivery)
{
    auto b = contBoard();
    tics::TicsRuntime rt(noPolicy());
    mem::nv<int> fromIsr(b->nvram(), "fromIsr", 42);
    int isrRuns = 0; // host-side
    const auto res = b->run(
        rt,
        [&] {
            rt.checkpointNow();
            if (rt.interruptsServiced() == 0 && isrRuns == 0) {
                rt.raiseInterrupt([&] {
                    ++isrRuns;
                    fromIsr = 99;
                    // Power dies inside the handler.
                    b->ctx().exitWith(context::ExitReason::PowerFail);
                });
                rt.triggerPoint();
            }
        },
        kNsPerSec);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(isrRuns, 1);           // the handler is NOT re-delivered
    EXPECT_EQ(fromIsr.get(), 42);    // its memory effects were undone
    EXPECT_EQ(rt.interruptsServiced(), 0u);
}

TEST(Interrupts, PendingBitsLostOnPowerFailure)
{
    auto b = contBoard();
    tics::TicsRuntime rt(noPolicy());
    int phase = 0;
    const auto res = b->run(
        rt,
        [&] {
            if (phase++ == 0) {
                rt.raiseInterrupt([] {});
                // Die before any trigger services it.
                b->ctx().exitWith(context::ExitReason::PowerFail);
            }
            rt.triggerPoint();
        },
        kNsPerSec);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(rt.interruptsServiced(), 0u);
    EXPECT_EQ(rt.interruptsLost(), 1u);
}

// ---- virtualized radio ------------------------------------------------

TEST(VirtualRadio, TransmitsOnCommitNotOnSend)
{
    auto b = contBoard();
    tics::TicsRuntime rt(noPolicy());
    tics::VirtualRadio vr(rt, b->nvram(), "vr");
    b->run(
        rt,
        [&] {
            const std::uint32_t msg = 0xABCD;
            vr.send(&msg, sizeof(msg));
            EXPECT_EQ(b->radio().sentCount(), 0u); // staged only
            rt.checkpointNow();
            EXPECT_EQ(b->radio().sentCount(), 1u); // flushed at commit
        },
        kNsPerSec);
    ASSERT_EQ(b->radio().sentCount(), 1u);
    tics::VirtualRadio::Header hdr;
    std::memcpy(&hdr, b->radio().packets()[0].payload.data(),
                sizeof(hdr));
    EXPECT_EQ(hdr.seq, 1u);
    EXPECT_EQ(vr.sentSeq(), 1u);
}

TEST(VirtualRadio, UncommittedStageIsRolledBackNotSent)
{
    auto b = contBoard();
    tics::TicsRuntime rt(noPolicy());
    tics::VirtualRadio vr(rt, b->nvram(), "vr");
    int attempt = 0;
    const auto res = b->run(
        rt,
        [&] {
            rt.checkpointNow();
            if (++attempt == 1) {
                const std::uint32_t msg = 0xDEAD;
                vr.send(&msg, sizeof(msg));
                // Failure before the staging epoch commits: the legacy
                // pattern would have already transmitted; the virtual
                // radio has not.
                b->ctx().exitWith(context::ExitReason::PowerFail);
            }
        },
        kNsPerSec);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(b->radio().sentCount(), 0u);
    EXPECT_EQ(vr.sentSeq(), 0u);
}

TEST(VirtualRadio, ReexecutedSendIsNotDuplicated)
{
    auto b = contBoard();
    tics::TicsRuntime rt(noPolicy());
    tics::VirtualRadio vr(rt, b->nvram(), "vr");
    int attempt = 0;
    const auto res = b->run(
        rt,
        [&] {
            rt.checkpointNow();
            const std::uint32_t msg = 0xBEEF + 0; // re-executed twice
            vr.send(&msg, sizeof(msg));
            rt.checkpointNow(); // commits + flushes
            if (++attempt == 1)
                b->ctx().exitWith(context::ExitReason::PowerFail);
            // After the reboot, execution resumes AFTER the commit:
            // the send is not re-staged and not re-sent.
        },
        kNsPerSec);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(b->radio().sentCount(), 1u);
}

TEST(VirtualRadio, BackToBackSendsStayOrderedAndComplete)
{
    auto b = contBoard();
    tics::TicsRuntime rt(noPolicy());
    tics::VirtualRadio vr(rt, b->nvram(), "vr");
    b->run(
        rt,
        [&] {
            for (std::uint32_t i = 1; i <= 5; ++i)
                vr.send(&i, sizeof(i)); // forces intermediate commits
            rt.checkpointNow();
        },
        kNsPerSec);
    ASSERT_EQ(b->radio().sentCount(), 5u);
    for (std::uint32_t i = 0; i < 5; ++i) {
        tics::VirtualRadio::Header hdr;
        std::memcpy(&hdr, b->radio().packets()[i].payload.data(),
                    sizeof(hdr));
        EXPECT_EQ(hdr.seq, i + 1);
        std::uint32_t body;
        std::memcpy(&body,
                    b->radio().packets()[i].payload.data() + sizeof(hdr),
                    sizeof(body));
        EXPECT_EQ(body, i + 1);
    }
}

TEST(VirtualRadio, SurvivesIntermittentSupplyEndToEnd)
{
    auto b = std::make_unique<board::Board>(
        board::BoardConfig{},
        std::make_unique<energy::PatternSupply>(12 * kNsPerMs, 0.6),
        std::make_unique<timekeeper::PerfectTimekeeper>());
    tics::TicsConfig cfg;
    cfg.policy = tics::PolicyKind::Timer;
    cfg.timerPeriod = 3 * kNsPerMs;
    tics::TicsRuntime rt(cfg);
    tics::VirtualRadio vr(rt, b->nvram(), "vr");
    mem::nv<std::uint32_t> i(b->nvram(), "i");
    const auto res = b->run(
        rt,
        [&] {
            board::FrameGuard fg(rt, 20);
            while (i.get() < 12) {
                rt.triggerPoint();
                const std::uint32_t payload = 100 + i.get();
                vr.send(&payload, sizeof(payload));
                i = i.get() + 1;
                b->charge(1500);
            }
            vr.drainAll();
        },
        60 * kNsPerSec);
    ASSERT_TRUE(res.completed);
    EXPECT_GT(res.reboots, 0u);
    // Every message delivered at least once; first deliveries are in
    // order with no gaps; duplicates (cursor-rollback re-transmissions)
    // only repeat already-seen sequence numbers.
    ASSERT_GE(b->radio().sentCount(), 12u);
    std::uint32_t maxSeen = 0;
    std::uint32_t unique = 0;
    for (const auto &pkt : b->radio().packets()) {
        tics::VirtualRadio::Header hdr;
        std::memcpy(&hdr, pkt.payload.data(), sizeof(hdr));
        ASSERT_LE(hdr.seq, maxSeen + 1); // no gap can ever appear
        if (hdr.seq == maxSeen + 1) {
            maxSeen = hdr.seq;
            ++unique;
        }
    }
    EXPECT_EQ(unique, 12u);
}
