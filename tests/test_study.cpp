/**
 * @file
 * Tests of the user-study programs (Fig. 10): both styles of each
 * program must compute identical results, survive intermittency, and
 * the effort metrics must show the task versions as structurally
 * larger — the property the study's findings rest on.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/study/study.hpp"
#include "harness/effort.hpp"

using namespace ticsim;
using namespace ticsim::apps::study;

namespace {

std::unique_ptr<board::Board>
patternBoard(std::uint64_t seed = 1)
{
    board::BoardConfig cfg;
    cfg.seed = seed;
    return std::make_unique<board::Board>(
        cfg, std::make_unique<energy::PatternSupply>(15 * kNsPerMs, 0.6),
        std::make_unique<timekeeper::PerfectTimekeeper>());
}

tics::TicsConfig
studyTics()
{
    tics::TicsConfig cfg;
    cfg.segmentBytes = 128;
    cfg.policy = tics::PolicyKind::Timer;
    cfg.timerPeriod = 3 * kNsPerMs;
    return cfg;
}

} // namespace

TEST(Study, SwapBothStylesAgree)
{
    auto b1 = patternBoard();
    tics::TicsRuntime rt1(studyTics());
    SwapTics s1(*b1, rt1, 3, 5);
    ASSERT_TRUE(b1->run(rt1, [&] { s1.main(); }, kNsPerSec).completed);
    EXPECT_EQ(s1.a(), 5);
    EXPECT_EQ(s1.b(), 3);

    auto b2 = patternBoard();
    taskrt::TaskRuntime rt2;
    SwapInk s2(*b2, rt2, 3, 5);
    ASSERT_TRUE(b2->run(rt2, {}, kNsPerSec).completed);
    EXPECT_EQ(s2.a(), 5);
    EXPECT_EQ(s2.b(), 3);
}

TEST(Study, BubbleBothStylesSortCorrectly)
{
    const SortArray input = {9, 2, 7, 1, 8, 3, 12, 0, 5, 11, 4, 6};
    SortArray expected = input;
    std::sort(expected.begin(), expected.end());

    auto b1 = patternBoard(7);
    tics::TicsRuntime rt1(studyTics());
    BubbleTics s1(*b1, rt1, input);
    ASSERT_TRUE(
        b1->run(rt1, [&] { s1.main(); }, 10 * kNsPerSec).completed);
    EXPECT_EQ(s1.result(), expected);

    auto b2 = patternBoard(7);
    taskrt::TaskRuntime rt2;
    BubbleInk s2(*b2, rt2, input);
    ASSERT_TRUE(b2->run(rt2, {}, 10 * kNsPerSec).completed);
    EXPECT_EQ(s2.result(), expected);
}

TEST(Study, TimekeepingBothStylesGateOnFreshness)
{
    auto b1 = patternBoard(3);
    tics::TicsRuntime rt1(studyTics());
    TimekeepTics s1(*b1, rt1, 2 * kNsPerMs); // tight lifetime
    ASSERT_TRUE(
        b1->run(rt1, [&] { s1.main(); }, 10 * kNsPerSec).completed);
    EXPECT_EQ(s1.consumed() + s1.discarded(), 24u);
    // do_work() takes 4 ms > the 2 ms lifetime: everything expires.
    EXPECT_EQ(s1.consumed(), 0u);

    auto b2 = patternBoard(3);
    taskrt::TaskRuntime rt2;
    TimekeepInk s2(*b2, rt2, 2 * kNsPerMs);
    ASSERT_TRUE(b2->run(rt2, {}, 10 * kNsPerSec).completed);
    EXPECT_EQ(s2.consumed() + s2.discarded(), 24u);
    EXPECT_EQ(s2.consumed(), 0u);
}

TEST(Study, TimekeepingGenerousLifetimeConsumes)
{
    auto b1 = patternBoard(3);
    tics::TicsRuntime rt1(studyTics());
    TimekeepTics s1(*b1, rt1, 500 * kNsPerMs);
    ASSERT_TRUE(
        b1->run(rt1, [&] { s1.main(); }, 10 * kNsPerSec).completed);
    EXPECT_GT(s1.consumed(), 20u); // nearly all rounds consume
}

TEST(Study, TaskStyleIsStructurallyLarger)
{
    for (const auto &pt : programTexts()) {
        const auto tics = harness::analyzeSource(
            pt.ticsSource, pt.ticsElements, pt.ticsSharedState);
        const auto ink = harness::analyzeSource(
            pt.inkSource, pt.inkElements, pt.inkSharedState);
        EXPECT_GT(ink.loc, tics.loc) << pt.name;
        EXPECT_GT(ink.elements, tics.elements) << pt.name;
        EXPECT_GE(ink.sharedState, tics.sharedState) << pt.name;
    }
}
