/**
 * @file
 * Tests for the perf subsystem (src/perf/): hot-path counter
 * conservation against the trace sink, cross-thread merge identity,
 * the profiler's disabled-mode zero-clock-read guarantee, exclusive
 * zone accounting, Welford merge identity for host profiles, and the
 * observation-only contract — simulated results are byte-identical
 * with the profiler on or off and for any job count.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <string>

#include "mem/nv.hpp"
#include "mem/nvram.hpp"
#include "mem/trace.hpp"
#include "perf/counters.hpp"
#include "perf/host_profiler.hpp"
#include "sweep/job_pool.hpp"
#include "sweep/sweep.hpp"

namespace ticsim {
namespace {

/** Tallies deliveries so conservation can be checked exactly. */
class TallySink final : public mem::AccessSink
{
  public:
    void memRead(const void *, std::uint32_t) override { ++reads; }
    void memWrite(const void *, std::uint32_t) override { ++writes; }
    void memVersioned(const void *, std::uint32_t) override
    {
        ++versioned;
    }
    void powerOn() override { ++boots; }
    void commit() override { ++commits; }

    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t versioned = 0;
    std::uint64_t boots = 0;
    std::uint64_t commits = 0;
};

// ---- counter field table ------------------------------------------------

TEST(PerfCounters, FieldTableIsExhaustiveAndUnique)
{
    int n = 0;
    const perf::CounterField *fields = perf::counterFields(n);
    // Every member is a uint64 and every member appears exactly once,
    // so the table size must match the struct size; this catches a
    // counter added to the struct but forgotten in the table.
    EXPECT_EQ(static_cast<std::size_t>(n) * sizeof(std::uint64_t),
              sizeof(perf::HotCounters));
    std::set<std::string> names;
    for (int i = 0; i < n; ++i)
        EXPECT_TRUE(names.insert(fields[i].name).second)
            << "duplicate name " << fields[i].name;
    // Setting every table entry must light up every word of the
    // struct: a duplicate member pointer would leave one dark.
    perf::HotCounters probe;
    for (int i = 0; i < n; ++i)
        probe.*(fields[i].field) = 1;
    std::uint64_t words[sizeof(perf::HotCounters) /
                        sizeof(std::uint64_t)];
    std::memcpy(words, &probe, sizeof(probe));
    for (std::size_t w = 0; w < std::size(words); ++w)
        EXPECT_EQ(words[w], 1u) << "word " << w << " not covered";
}

TEST(PerfCounters, AddAndDeltaArePointwise)
{
    int n = 0;
    const perf::CounterField *fields = perf::counterFields(n);
    perf::HotCounters a;
    perf::HotCounters b;
    for (int i = 0; i < n; ++i) {
        a.*(fields[i].field) = static_cast<std::uint64_t>(i) + 1;
        b.*(fields[i].field) = static_cast<std::uint64_t>(2 * i) + 5;
    }
    perf::HotCounters sum = a;
    sum.add(b);
    const perf::HotCounters diff = sum.delta(b);
    for (int i = 0; i < n; ++i) {
        EXPECT_EQ(sum.*(fields[i].field),
                  a.*(fields[i].field) + b.*(fields[i].field))
            << fields[i].name;
        EXPECT_EQ(diff.*(fields[i].field), a.*(fields[i].field))
            << fields[i].name;
    }
    // delta() saturates instead of wrapping when the snapshot is ahead.
    const perf::HotCounters clamped = a.delta(sum);
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(clamped.*(fields[i].field), 0u) << fields[i].name;
}

// ---- conservation against the trace sink --------------------------------

TEST(PerfCounters, SinkConservation)
{
    mem::NvRam ram;
    mem::nv<std::uint64_t> x(ram, "perf.test.x");

    TallySink sink;
    mem::ScopedSink s(&sink);
    const perf::HotCounters before = perf::hot();

    constexpr std::uint64_t kStores = 1000;
    constexpr std::uint64_t kLoads = 300;
    for (std::uint64_t i = 0; i < kStores; ++i)
        x = i;
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < kLoads; ++i)
        acc += x;
    EXPECT_EQ(acc, kLoads * (kStores - 1));

    const perf::HotCounters d = perf::hot().delta(before);
    // Sink installed => counted NV traffic equals delivered events.
    EXPECT_EQ(d.nvStores, kStores);
    EXPECT_EQ(d.nvStores, sink.writes);
    EXPECT_EQ(d.nvLoads, kLoads);
    EXPECT_EQ(d.nvLoads, sink.reads);
    EXPECT_EQ(d.nvStoreBytes, kStores * sizeof(std::uint64_t));
    EXPECT_EQ(d.nvLoadBytes, kLoads * sizeof(std::uint64_t));
    // Every dispatch this scope made was delivered, none fast-pathed.
    EXPECT_EQ(d.sinkDispatches,
              sink.reads + sink.writes + sink.versioned + sink.boots +
                  sink.commits);
    EXPECT_EQ(d.sinkFastNull, 0u);
}

TEST(PerfCounters, FastPathCountsWithoutSink)
{
    mem::NvRam ram;
    mem::nv<std::uint64_t> x(ram, "perf.test.x");
    ASSERT_EQ(mem::accessSink(), nullptr);

    const perf::HotCounters before = perf::hot();
    constexpr std::uint64_t kStores = 500;
    for (std::uint64_t i = 0; i < kStores; ++i)
        x = i;
    const perf::HotCounters d = perf::hot().delta(before);
    EXPECT_EQ(d.nvStores, kStores);
    EXPECT_EQ(d.sinkDispatches, 0u);
    EXPECT_EQ(d.sinkFastNull, kStores);
}

// ---- cross-thread merge -------------------------------------------------

TEST(PerfCounters, MergedCountersEqualSerialTotal)
{
    constexpr std::size_t kJobs = 64;
    constexpr std::uint64_t kStoresPerJob = 100;

    const auto work = [](std::size_t) {
        mem::NvRam ram;
        mem::nv<std::uint64_t> x(ram, "perf.test.job");
        for (std::uint64_t i = 0; i < kStoresPerJob; ++i)
            x = i;
    };

    // Serial baseline: every store lands on this thread's block.
    perf::HotCounters before = perf::mergedCounters();
    {
        const sweep::JobPool pool(1);
        pool.run(kJobs, work);
    }
    const perf::HotCounters serial =
        perf::mergedCounters().delta(before);

    // Parallel: stores land on worker-thread blocks which are folded
    // into the retired aggregate when the pool's threads exit.
    before = perf::mergedCounters();
    {
        const sweep::JobPool pool(4);
        pool.run(kJobs, work);
    }
    const perf::HotCounters parallel =
        perf::mergedCounters().delta(before);

    EXPECT_EQ(serial.nvStores, kJobs * kStoresPerJob);
    EXPECT_EQ(parallel.nvStores, serial.nvStores);
    EXPECT_EQ(parallel.nvStoreBytes, serial.nvStoreBytes);
    EXPECT_EQ(serial.jobsExecuted, kJobs);
    EXPECT_EQ(parallel.jobsExecuted, kJobs);
}

// ---- host profiler ------------------------------------------------------

TEST(PerfProfiler, DisabledScopesReadNoClocks)
{
    perf::ScopedProfilerEnable off(false);
    ASSERT_FALSE(perf::profilerEnabled());

    const perf::HostProfiler before = perf::mergedProfiler();
    const std::uint64_t reads = perf::clockReads();
    for (int i = 0; i < 10'000; ++i) {
        perf::HostScope scope(perf::HostZone::Checkpoint);
        (void)scope;
    }
    // The disabled-mode overhead bound: zero steady-clock queries —
    // not a flaky wall-clock assertion.
    EXPECT_EQ(perf::clockReads(), reads);
    const perf::HostProfiler after = perf::mergedProfiler();
    for (int z = 0; z < perf::kHostZoneCount; ++z) {
        const auto zone = static_cast<perf::HostZone>(z);
        EXPECT_EQ(after.scopeCount(zone), before.scopeCount(zone))
            << perf::hostZoneName(zone);
    }
}

TEST(PerfProfiler, EnabledScopesSampleTheirZones)
{
    perf::ScopedProfilerEnable on;
    const perf::HostProfiler before = perf::mergedProfiler();
    const std::uint64_t reads = perf::clockReads();
    {
        perf::HostScope outer(perf::HostZone::Analysis);
        {
            perf::HostScope inner(perf::HostZone::CacheIo);
        }
    }
    const perf::HostProfiler after = perf::mergedProfiler();
    EXPECT_EQ(after.scopeCount(perf::HostZone::Analysis),
              before.scopeCount(perf::HostZone::Analysis) + 1);
    EXPECT_EQ(after.scopeCount(perf::HostZone::CacheIo),
              before.scopeCount(perf::HostZone::CacheIo) + 1);
    EXPECT_GT(perf::clockReads(), reads);
    // Exclusive accounting: both zone sums moved, and neither is
    // negative (the child's time is not double-charged to the parent).
    EXPECT_GE(after.zoneNs(perf::HostZone::Analysis),
              before.zoneNs(perf::HostZone::Analysis));
    EXPECT_GE(after.zoneNs(perf::HostZone::CacheIo),
              before.zoneNs(perf::HostZone::CacheIo));
}

TEST(PerfProfiler, MergeIsAdditivePerZone)
{
    perf::HostProfiler a;
    perf::HostProfiler b;
    a.sample(perf::HostZone::SimCore, 10.0);
    a.sample(perf::HostZone::SimCore, 30.0);
    a.sample(perf::HostZone::Report, 5.0);
    b.sample(perf::HostZone::SimCore, 20.0);
    b.sample(perf::HostZone::CacheIo, 7.0);

    perf::HostProfiler merged = a;
    merged.merge(b);
    EXPECT_EQ(merged.scopeCount(perf::HostZone::SimCore), 3u);
    EXPECT_DOUBLE_EQ(merged.zoneNs(perf::HostZone::SimCore), 60.0);
    EXPECT_DOUBLE_EQ(merged.zone(perf::HostZone::SimCore).mean(), 20.0);
    EXPECT_EQ(merged.scopeCount(perf::HostZone::Report), 1u);
    EXPECT_EQ(merged.scopeCount(perf::HostZone::CacheIo), 1u);
    EXPECT_DOUBLE_EQ(merged.totalNs(), 72.0);
    // Merging an empty profile is the identity.
    perf::HostProfiler empty;
    perf::HostProfiler same = merged;
    same.merge(empty);
    EXPECT_DOUBLE_EQ(same.totalNs(), merged.totalNs());
    EXPECT_EQ(same.zone(perf::HostZone::SimCore).encode(),
              merged.zone(perf::HostZone::SimCore).encode());
}

TEST(PerfProfiler, ZoneNamesAreStableSnakeCase)
{
    std::set<std::string> names;
    for (int z = 0; z < perf::kHostZoneCount; ++z) {
        const std::string name =
            perf::hostZoneName(static_cast<perf::HostZone>(z));
        EXPECT_FALSE(name.empty());
        EXPECT_TRUE(names.insert(name).second) << "duplicate " << name;
        for (char ch : name)
            EXPECT_TRUE((ch >= 'a' && ch <= 'z') || ch == '_')
                << name;
    }
    EXPECT_EQ(names.count("sim_core"), 1u);
    EXPECT_EQ(names.count("cache_io"), 1u);
}

// ---- observation-only: results are identical with observers live --------

sweep::SweepConfig
perfSweepConfig()
{
    sweep::SweepConfig cfg;
    cfg.grid.apps = {"BC"};
    cfg.grid.runtimes = {"TICS"};
    cfg.grid.seeds = {11, 12};
    cfg.useCache = false;
    return cfg;
}

void
expectSameCells(const sweep::SweepResult &a, const sweep::SweepResult &b)
{
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        EXPECT_EQ(a.cells[i].cell.canonical(),
                  b.cells[i].cell.canonical());
        EXPECT_EQ(a.cells[i].result.encode(),
                  b.cells[i].result.encode());
        EXPECT_EQ(a.cells[i].result.simMs.encode(),
                  b.cells[i].result.simMs.encode());
    }
}

TEST(PerfObservation, ResultsIdenticalWithProfilerOnOrOff)
{
    auto cfg = perfSweepConfig();
    cfg.jobs = 1;

    sweep::SweepResult off;
    {
        perf::ScopedProfilerEnable disable(false);
        off = sweep::runSweep(cfg);
    }
    sweep::SweepResult on;
    {
        perf::ScopedProfilerEnable enable;
        on = sweep::runSweep(cfg);
    }
    expectSameCells(off, on);
}

TEST(PerfObservation, ResultsIdenticalForAnyJobCountWithProfilerOn)
{
    auto cfg = perfSweepConfig();
    perf::ScopedProfilerEnable enable;
    cfg.jobs = 1;
    const auto serial = sweep::runSweep(cfg);
    cfg.jobs = 4;
    const auto parallel = sweep::runSweep(cfg);
    expectSameCells(serial, parallel);
}

} // namespace
} // namespace ticsim
