/**
 * @file
 * Integration tests of the Table 1 / Table 2 applications: GHM
 * consistency judging in both program shapes, and the timed AR pair's
 * violation behaviour (manual violates, TICS-annotated does not).
 */

#include <gtest/gtest.h>

#include "apps/ar/ar_timed.hpp"
#include "apps/ghm/ghm.hpp"
#include "harness/experiment.hpp"
#include "runtimes/plainc.hpp"
#include "tics/runtime.hpp"

using namespace ticsim;

namespace {

tics::TicsConfig
ghmCfg()
{
    tics::TicsConfig cfg;
    cfg.segmentBytes = 128;
    cfg.policy = tics::PolicyKind::Timer;
    return cfg;
}

} // namespace

TEST(Ghm, PlainShapeConsistentOnContinuousPower)
{
    harness::SupplySpec spec;
    auto b = harness::makeBoard(spec);
    runtimes::PlainCRuntime rt;
    apps::GhmParams p;
    p.rounds = 12;
    apps::GhmPlainApp app(*b, rt, p);
    const auto res = b->run(rt, [&] { app.main(); }, 10 * kNsPerSec);
    ASSERT_TRUE(res.completed);
    const auto o = app.outcome();
    EXPECT_TRUE(o.consistent);
    EXPECT_EQ(o.send, 12u);
    EXPECT_EQ(o.senseMoisture, 12u);
    EXPECT_EQ(b->radio().sentCount(), 12u);
}

TEST(Ghm, PlainShapeInconsistentUnderIntermittency)
{
    harness::SupplySpec spec;
    spec.setup = harness::PowerSetup::Pattern;
    spec.patternPeriod = 100 * kNsPerMs;
    spec.patternOnFraction = 0.48;
    auto b = harness::makeBoard(spec, 42);
    runtimes::PlainCRuntime rt;
    apps::GhmPlainApp app(*b, rt, {});
    b->run(rt, [&] { app.main(); }, kNsPerSec);
    const auto o = app.outcome();
    EXPECT_FALSE(o.consistent);
    // Early routines run ahead of later ones (the Table 1 skew).
    EXPECT_GT(o.senseMoisture, o.send);
}

TEST(Ghm, TicsKeepsBothShapesConsistentUnderIntermittency)
{
    for (int shape = 0; shape < 2; ++shape) {
        harness::SupplySpec spec;
        spec.setup = harness::PowerSetup::Pattern;
        spec.patternPeriod = 100 * kNsPerMs;
        spec.patternOnFraction = 0.48;
        auto b = harness::makeBoard(spec, 42);
        tics::TicsRuntime rt(ghmCfg());
        apps::GhmOutcome o;
        if (shape == 0) {
            apps::GhmPlainApp app(*b, rt, {});
            b->run(rt, [&] { app.main(); }, kNsPerSec);
            o = app.outcome();
        } else {
            apps::GhmTinyosApp app(*b, rt, {});
            b->run(rt, [&] { app.main(); }, kNsPerSec);
            o = app.outcome();
        }
        EXPECT_TRUE(o.consistent) << "shape " << shape;
        EXPECT_GT(o.send, 5u) << "shape " << shape;
    }
}

TEST(Ghm, JudgeRejectsReplayedRounds)
{
    device::Radio radio;
    apps::GhmPacket p1{3, 10, 20};
    apps::GhmPacket p2{2, 10, 20}; // round regression
    radio.send(0, &p1, sizeof(p1));
    radio.send(1, &p2, sizeof(p2));
    const auto o = apps::ghmJudge(2, 2, 2, 2, radio);
    EXPECT_FALSE(o.consistent);
}

TEST(Ghm, JudgeToleratesOneRetransmission)
{
    device::Radio radio;
    apps::GhmPacket p{1, 10, 20};
    radio.send(0, &p, sizeof(p));
    radio.send(1, &p, sizeof(p)); // one re-send (failure after TX)
    p.round = 2;
    radio.send(2, &p, sizeof(p));
    const auto o = apps::ghmJudge(2, 2, 2, 2, radio);
    EXPECT_TRUE(o.consistent);
}

TEST(Ghm, JudgeRejectsCounterSkew)
{
    device::Radio radio;
    const auto o = apps::ghmJudge(9, 9, 9, 0, radio);
    EXPECT_FALSE(o.consistent);
}

TEST(ArTimed, ManualVariantViolatesTicsDoesNot)
{
    harness::SupplySpec spec;
    spec.setup = harness::PowerSetup::RfHarvested;
    spec.rfDistanceM = 2.9;
    spec.accelRegimePeriod = 120 * kNsPerMs;
    apps::ArTimedParams p;
    p.windows = 60;

    std::uint64_t manualTotal = 0;
    {
        auto b = harness::makeBoard(spec, 7);
        runtimes::MementosConfig mc;
        mc.trigger = runtimes::MementosConfig::Trigger::Timer;
        runtimes::MementosRuntime rt(mc);
        apps::ArTimedManualApp app(*b, rt, p);
        b->run(rt, [&] { app.main(); }, 300 * kNsPerSec);
        const auto &m = b->monitor();
        manualTotal =
            m.counts(board::ViolationKind::TimelyBranch).observed +
            m.counts(board::ViolationKind::Misalignment).observed +
            m.counts(board::ViolationKind::Expiration).observed;
        EXPECT_EQ(app.processed(), p.windows); // no freshness guard
    }
    EXPECT_GT(manualTotal, 0u);

    {
        auto b = harness::makeBoard(spec, 7);
        tics::TicsRuntime rt(ghmCfg());
        apps::ArTimedTicsApp app(*b, rt, p);
        const auto res = b->run(rt, [&] { app.main(); }, 300 * kNsPerSec);
        ASSERT_TRUE(res.completed);
        const auto &m = b->monitor();
        EXPECT_EQ(
            m.counts(board::ViolationKind::TimelyBranch).observed, 0u);
        EXPECT_EQ(
            m.counts(board::ViolationKind::Misalignment).observed, 0u);
        EXPECT_EQ(
            m.counts(board::ViolationKind::Expiration).observed, 0u);
        // Every window was either processed fresh or discarded stale.
        EXPECT_EQ(app.processed() + app.discarded(), p.windows);
    }
}

TEST(ArTimed, TraceRecordsDiscardsAndAlerts)
{
    harness::SupplySpec spec;
    spec.setup = harness::PowerSetup::RfHarvested;
    spec.rfDistanceM = 2.9;
    spec.accelRegimePeriod = 120 * kNsPerMs;
    auto b = harness::makeBoard(spec, 7);
    tics::TicsRuntime rt(ghmCfg());
    apps::ArTimedParams p;
    p.windows = 40;
    apps::ArTimedTicsApp app(*b, rt, p);
    b->run(rt, [&] { app.main(); }, 300 * kNsPerSec);
    ASSERT_FALSE(app.trace().empty());
    bool sawFresh = false, sawStale = false;
    for (const auto &ev : app.trace()) {
        sawFresh |= ev.fresh;
        sawStale |= !ev.fresh;
    }
    EXPECT_TRUE(sawFresh);
    EXPECT_TRUE(sawStale);
}
