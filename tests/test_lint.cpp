/**
 * @file
 * Source-level lint: lexer, parser, the four dataflow rules on golden
 * snippets, the v6 run-report round trip, and the guard-deletion pin
 * on the real SensorRelay demo source.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "harness/report.hpp"
#include "lint/analyzer.hpp"
#include "lint/crossval.hpp"
#include "lint/lexer.hpp"
#include "lint/program.hpp"

using namespace ticsim;
using namespace ticsim::lint;

namespace {

std::size_t
countRule(const std::vector<StaticFinding> &fs, const char *rule)
{
    return static_cast<std::size_t>(
        std::count_if(fs.begin(), fs.end(), [&](const StaticFinding &f) {
            return f.rule == rule;
        }));
}

std::size_t
countRule(const FileReport &r, const char *rule)
{
    return countRule(r.findings, rule);
}

/** A class wrapper with one nv counter and the given main() body. */
std::string
appWith(const std::string &mainBody)
{
    return "struct App {\n"
           "  App(board::Board &b, tics::TicsRuntime &runtime)\n"
           "      : rt(runtime), count(b.nvram(), \"t.count\"),\n"
           "        other(b.nvram(), \"t.other\") {}\n"
           "  void main() {\n" +
           mainBody +
           "  }\n"
           "  tics::TicsRuntime &rt;\n"
           "};\n";
}

} // namespace

// ---- lexer -----------------------------------------------------------

TEST(LintLexer, RawStringCollapsesToOneToken)
{
    const auto toks = tokenize("x = R\"(@nv int a; { } \"quoted\")\";\n"
                               "y\n");
    ASSERT_GE(toks.size(), 5u);
    EXPECT_EQ(toks[0].text, "x");
    EXPECT_EQ(toks[1].text, "=");
    EXPECT_EQ(toks[2].kind, TokKind::String);
    EXPECT_EQ(toks[3].text, ";");
    // The braces inside the raw string must not leak as Punct tokens.
    EXPECT_EQ(toks[4].text, "y");
    EXPECT_EQ(toks[4].line, 2);
}

TEST(LintLexer, LongestMatchPunctuationAndComments)
{
    const auto toks = tokenize("a <<= b; // trailing\n"
                               "/* block\n   spanning */ c -> d :: e;\n"
                               "#define IGNORED 1\n"
                               "f += 2;\n");
    std::vector<std::string> texts;
    for (const auto &t : toks)
        if (t.kind != TokKind::End)
            texts.push_back(t.text);
    const std::vector<std::string> want = {"a", "<<=", "b", ";",  "c",
                                           "->", "d",  "::", "e", ";",
                                           "f",  "+=", "2",  ";"};
    EXPECT_EQ(texts, want);
}

TEST(LintLexer, LineNumbersSurviveContinuationsAndStrings)
{
    const auto toks = tokenize("#define A \\\n    1\n\"two\\nlines\"\nz\n");
    ASSERT_GE(toks.size(), 2u);
    EXPECT_EQ(toks[0].kind, TokKind::String);
    EXPECT_EQ(toks[0].line, 3);
    EXPECT_EQ(toks[1].text, "z");
    EXPECT_EQ(toks[1].line, 4);
}

// ---- parser ----------------------------------------------------------

TEST(LintParser, BindingClassification)
{
    const std::string src =
        "struct App {\n"
        "  App(board::Board &b, tics::TicsRuntime &rt)\n"
        "      : plain(b.nvram(), \"a.plain\"),\n"
        "        arr(b.nvram(), \"a.arr\"),\n"
        "        timed(rt, b.nvram(), \"a.timed\", lifetime),\n"
        "        chan(rt, b.nvram(), \"a.chan\") {}\n"
        "  void main() {}\n"
        "};\n";
    const auto prog = parseSource("t.cpp", src);
    const auto *plain = prog.findBinding("App", "plain");
    const auto *arr = prog.findBinding("App", "arr");
    const auto *timed = prog.findBinding("App", "timed");
    const auto *chan = prog.findBinding("App", "chan");
    ASSERT_NE(plain, nullptr);
    ASSERT_NE(arr, nullptr);
    ASSERT_NE(timed, nullptr);
    ASSERT_NE(chan, nullptr);
    EXPECT_EQ(plain->kind, BindKind::NvRegion);
    EXPECT_EQ(plain->region, "a.plain");
    EXPECT_EQ(arr->kind, BindKind::NvRegion);
    EXPECT_EQ(timed->kind, BindKind::Timed);
    EXPECT_EQ(timed->region, "a.timed");
    EXPECT_EQ(chan->kind, BindKind::Channel);
}

TEST(LintParser, FindsFunctionsAndQualifiedNames)
{
    const std::string src = appWith("    count = count.get() + 1;\n");
    const auto prog = parseSource("t.cpp", src);
    const auto *m = prog.findFunction("App", "main");
    const auto *ctor = prog.findFunction("App", "App");
    ASSERT_NE(m, nullptr);
    ASSERT_NE(ctor, nullptr);
    EXPECT_EQ(m->qualified(), "App::main");
    EXPECT_TRUE(ctor->isCtor);
}

// ---- golden negative snippet per rule, plus a clean one --------------

TEST(LintRules, WarSpanWithoutBoundary)
{
    const auto report = analyzeText(
        "war.cpp",
        appWith("    int v = count.get();\n"
                "    other = 1;\n"
                "    count = v + 1;\n"),
        fileModeTraits());
    EXPECT_EQ(countRule(report, kRuleWar), 1u);
    ASSERT_FALSE(report.findings.empty());
    EXPECT_EQ(report.findings.front().subject, "t.count");
}

TEST(LintRules, BoundaryClosesWarSpan)
{
    const auto report = analyzeText(
        "war_ok.cpp",
        appWith("    int v = count.get();\n"
                "    rt.triggerPoint();\n"
                "    count = v + 1;\n"),
        fileModeTraits());
    EXPECT_EQ(countRule(report, kRuleWar), 0u);
}

TEST(LintRules, SameStatementWarNotMaskedByBoundary)
{
    // `x = x + 1` keeps the read value in flight: even a boundary
    // textually between read and write (impossible here, but the
    // split models it) cannot protect it. The canonical swap listing.
    const auto report = analyzeText(
        "war_same.cpp",
        appWith("    rt.triggerPoint();\n"
                "    count = count.get() + 1;\n"),
        fileModeTraits());
    EXPECT_EQ(countRule(report, kRuleWar), 1u);
}

TEST(LintRules, VersionedRuntimeSuppressesWar)
{
    const auto report = analyzeText(
        "war_versioned.cpp",
        appWith("    int v = count.get();\n"
                "    count = v + 1;\n"),
        RuntimeTraits{/*boundaries=*/true, /*versioned=*/true});
    EXPECT_EQ(countRule(report, kRuleWar), 0u);
}

TEST(LintRules, UnguardedTimedUse)
{
    const std::string src =
        "struct App {\n"
        "  App(board::Board &b, tics::TicsRuntime &rt)\n"
        "      : reading(rt, b.nvram(), \"t.reading\", life) {}\n"
        "  void main() {\n"
        "    int v = reading.read(0);\n"
        "  }\n"
        "};\n";
    const auto report = analyzeText("timely.cpp", src, fileModeTraits());
    EXPECT_EQ(countRule(report, kRuleTimeliness), 1u);
    ASSERT_FALSE(report.findings.empty());
    EXPECT_EQ(report.findings.front().subject, "t.reading");
}

TEST(LintRules, FreshGuardCoversTimedUse)
{
    const std::string src =
        "struct App {\n"
        "  App(board::Board &b, tics::TicsRuntime &rt)\n"
        "      : reading(rt, b.nvram(), \"t.reading\", life) {}\n"
        "  void main() {\n"
        "    if (reading.fresh(0)) {\n"
        "      int v = reading.read(0);\n"
        "    }\n"
        "  }\n"
        "};\n";
    const auto report = analyzeText("timely_ok.cpp", src, fileModeTraits());
    EXPECT_EQ(countRule(report, kRuleTimeliness), 0u);
}

TEST(LintRules, DirectSendIsIoFinding)
{
    const auto report = analyzeText(
        "io.cpp",
        appWith("    b.radioSend(&p, sizeof(p));\n"),
        fileModeTraits());
    EXPECT_EQ(countRule(report, kRuleIo), 1u);
    ASSERT_FALSE(report.findings.empty());
    EXPECT_EQ(report.findings.front().subject, "radio");
}

TEST(LintRules, StagedSendIsClean)
{
    const auto report = analyzeText(
        "io_ok.cpp",
        appWith("    radio->send(&p, sizeof(p));\n"),
        fileModeTraits());
    EXPECT_EQ(countRule(report, kRuleIo), 0u);
}

TEST(LintRules, UnboundedLoopWithoutBoundary)
{
    const auto report = analyzeText(
        "seg.cpp",
        appWith("    while (count.get() < limit) {\n"
                "      b.charge(10);\n"
                "    }\n"),
        fileModeTraits());
    EXPECT_EQ(countRule(report, kRuleSegmentation), 1u);
}

TEST(LintRules, LatchTriggerSegmentsLoop)
{
    const auto report = analyzeText(
        "seg_ok.cpp",
        appWith("    while (count.get() < limit) {\n"
                "      rt.triggerPoint();\n"
                "      b.charge(10);\n"
                "    }\n"),
        fileModeTraits());
    EXPECT_EQ(countRule(report, kRuleSegmentation), 0u);
}

TEST(LintRules, BoundedLoopNeedsNoSegmentation)
{
    const auto report = analyzeText(
        "seg_bounded.cpp",
        appWith("    for (int i = 0; i < 16; ++i) {\n"
                "      b.charge(10);\n"
                "    }\n"),
        fileModeTraits());
    EXPECT_EQ(countRule(report, kRuleSegmentation), 0u);
}

TEST(LintRules, CleanSnippetIsClean)
{
    const auto report = analyzeText(
        "clean.cpp",
        appWith("    rt.triggerPoint();\n"
                "    int v = count.get();\n"
                "    rt.triggerPoint();\n"
                "    count = v + 1;\n"
                "    for (int i = 0; i < 4; ++i) {\n"
                "      rt.triggerPoint();\n"
                "      b.charge(10);\n"
                "    }\n"),
        fileModeTraits());
    EXPECT_TRUE(report.findings.empty());
}

// ---- cross-validation plumbing ---------------------------------------

TEST(LintCrossval, CoversDynamicMatchingRules)
{
    StaticFinding war{kRuleWar, "bc.mismatches", "f.cpp", 1, "A::main", ""};
    StaticFinding seg{kRuleSegmentation, "A::main", "f.cpp", 2, "A::main",
                      ""};

    verify::Finding dWar;
    dWar.analysis = "war-possibility";
    dWar.subject = "bc.mismatches";
    verify::Finding dOther = dWar;
    dOther.subject = "bc.totalBits";
    verify::Finding dEnergy;
    dEnergy.analysis = "energy-progress";
    dEnergy.subject = "region#3"; // dynamic anchors carry no source line

    EXPECT_TRUE(coversDynamic(war, dWar));
    EXPECT_FALSE(coversDynamic(war, dOther));   // subject must match
    EXPECT_FALSE(coversDynamic(war, dEnergy));  // rule must correspond
    EXPECT_TRUE(coversDynamic(seg, dEnergy));   // kind-level match
}

TEST(LintCrossval, RuntimeTraitsMatchModelRecovery)
{
    EXPECT_FALSE(traitsForRuntime("plain-C").boundaries);
    EXPECT_FALSE(traitsForRuntime("plain-C").versioned);
    for (const char *rt :
         {"TICS", "MementOS-like", "Chinchilla-like", "Alpaca-like"}) {
        EXPECT_TRUE(traitsForRuntime(rt).boundaries) << rt;
        EXPECT_TRUE(traitsForRuntime(rt).versioned) << rt;
    }
}

// ---- the real sources: dogfood set and the guard-deletion pin --------

namespace {

std::string
readRepoFile(const std::string &rel)
{
    const std::string path = std::string(TICSIM_SOURCE_DIR) + "/" + rel;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
replaceAll(std::string text, const std::string &from, const std::string &to)
{
    std::size_t pos = 0;
    std::size_t hits = 0;
    while ((pos = text.find(from, pos)) != std::string::npos) {
        text.replace(pos, from.size(), to);
        pos += to.size();
        ++hits;
    }
    EXPECT_GT(hits, 0u) << "pattern not found: " << from;
    return text;
}

} // namespace

TEST(LintSources, DefaultSourceSetCoversAppsAndExamples)
{
    const auto files = defaultSourceSet(TICSIM_SOURCE_DIR);
    EXPECT_GE(files.size(), 20u);
    EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
    const auto has = [&](const char *f) {
        return std::find(files.begin(), files.end(), f) != files.end();
    };
    EXPECT_TRUE(has("examples/quickstart.cpp"));
    EXPECT_TRUE(has("src/apps/bc/bc_legacy.cpp"));
    EXPECT_TRUE(has("src/verify/demo_app.cpp"));
}

TEST(LintSources, GuardDeletionInDemoAppIsCaughtStatically)
{
    const std::string original = readRepoFile("src/verify/demo_app.cpp");
    const auto traits = traitsForRuntime("TICS");

    // As committed: the unguarded else-branch read makes the
    // path-insensitive must-analysis report timeliness (the documented
    // Relay+guard false positive).
    const auto asIs =
        analyzeEntry("demo_app.cpp", original, "SensorRelayApp", traits);
    EXPECT_EQ(countRule(asIs, kRuleTimeliness), 1u);

    // Fully guarded variant: neutralize the cold read; every remaining
    // consume sits inside the expires() guard, so timeliness is clean.
    const std::string guarded = replaceAll(
        original, "p.value = reading_.read(round); // unguarded cold read",
        "p.value = 0; // cold read removed");
    const auto cleanRun =
        analyzeEntry("demo_app.cpp", guarded, "SensorRelayApp", traits);
    EXPECT_EQ(countRule(cleanRun, kRuleTimeliness), 0u);

    // Now delete the guard (rename the special form so it no longer
    // establishes freshness): the consume inside the former guard body
    // must come back as a timeliness finding. This pins that removing
    // the expires() wrapper cannot go unnoticed by the lint.
    const std::string unguarded =
        replaceAll(guarded, "tics::expires", "tics::expiresRemoved");
    const auto regressed =
        analyzeEntry("demo_app.cpp", unguarded, "SensorRelayApp", traits);
    EXPECT_EQ(countRule(regressed, kRuleTimeliness), 1u);
    const auto it = std::find_if(
        regressed.begin(), regressed.end(), [](const StaticFinding &f) {
            return f.rule == kRuleTimeliness;
        });
    ASSERT_NE(it, regressed.end());
    EXPECT_EQ(it->subject, "relay.reading");
}

// ---- run-report v6 round trip ----------------------------------------

TEST(LintReport, V6DocumentRoundTrip)
{
    const std::string path =
        ::testing::TempDir() + "lint_report_roundtrip.json";
    {
        harness::ReportOptions opts;
        opts.jsonPath = path;
        harness::BenchSession session("ticslint", opts);
        harness::LintSection lint;
        lint.filesAnalyzed = 2;
        lint.functionsAnalyzed = 5;
        lint.findings.push_back({"war", "t.count", "a.cpp", 7, "App::main",
                                 "span"});
        lint.crossval = true;
        lint.fullCoverage = true;
        harness::LintCrossValEntry row;
        row.app = "BC";
        row.runtime = "plain-C";
        row.file = "a.cpp";
        row.dynamicFindings = 2;
        row.matchedFindings = 2;
        row.staticFindings = 3;
        row.confirmedStatic = 2;
        row.coverage = 1.0;
        row.fpRate = 1.0 / 3.0;
        lint.rows.push_back(row);
        session.setLint(lint);
        session.finish();
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string doc = ss.str();
    std::remove(path.c_str());

    EXPECT_NE(doc.find("\"schema\":\"ticsim.run_report\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"version\":6"), std::string::npos);
    EXPECT_NE(doc.find("\"lint\":{\"files_analyzed\":2"),
              std::string::npos);
    EXPECT_NE(doc.find("\"functions_analyzed\":5"), std::string::npos);
    EXPECT_NE(doc.find("\"rule\":\"war\""), std::string::npos);
    EXPECT_NE(doc.find("\"crossval\":true"), std::string::npos);
    EXPECT_NE(doc.find("\"full_coverage\":true"), std::string::npos);
    EXPECT_NE(doc.find("\"dynamic_findings\":2"), std::string::npos);
    EXPECT_NE(doc.find("\"confirmed_static\":2"), std::string::npos);
}
