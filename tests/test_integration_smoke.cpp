/**
 * @file
 * End-to-end smoke tests: a small program with recursion, stack
 * pointers and non-volatile globals must produce the same result under
 * heavy intermittency (TICS) as under continuous power, while the
 * unprotected baseline corrupts its state.
 */

#include <gtest/gtest.h>

#include "board/board.hpp"
#include "board/runtime.hpp"
#include "mem/nv.hpp"
#include "runtimes/plainc.hpp"
#include "tics/runtime.hpp"

using namespace ticsim;

namespace {

/** Recursion + pointer + NV-global workload. */
class MiniApp
{
  public:
    MiniApp(board::Board &b, board::Runtime &rt)
        : b_(b), rt_(rt), result_(b.nvram(), "mini.result"),
          iterations_(b.nvram(), "mini.iterations")
    {
    }

    void
    main()
    {
        board::FrameGuard fg(rt_, 32);
        for (int i = 0; i < 40; ++i) {
            rt_.triggerPoint();
            const int f = fib(10);
            int local = 7;
            int *p = &local;
            rt_.store(p, *p + (f % 3)); // instrumented stack-pointer store
            result_ = result_.get() + f + local;
            iterations_ += 1;
            b_.charge(600); // modeled per-iteration compute
        }
    }

    int
    fib(int n)
    {
        board::FrameGuard fg(rt_, 24);
        rt_.triggerPoint();
        if (n < 2)
            return n;
        return fib(n - 1) + fib(n - 2);
    }

    int result() const { return result_.get(); }
    int iterations() const { return iterations_.get(); }

  private:
    board::Board &b_;
    board::Runtime &rt_;
    mem::nv<int> result_;
    mem::nv<int> iterations_;
};

board::BoardConfig
testConfig()
{
    board::BoardConfig cfg;
    cfg.seed = 7;
    return cfg;
}

int
referenceResult()
{
    // fib(10) = 55; local = 7 + 55 % 3 = 8; 40 iterations.
    return 40 * (55 + 8);
}

} // namespace

TEST(IntegrationSmoke, TicsContinuousPowerMatchesReference)
{
    board::Board b(testConfig(),
                   std::make_unique<energy::ContinuousSupply>(),
                   std::make_unique<timekeeper::PerfectTimekeeper>());
    tics::TicsRuntime rt;
    MiniApp app(b, rt);
    const auto res = b.run(rt, [&] { app.main(); }, 60 * kNsPerSec);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.reboots, 0u);
    EXPECT_EQ(app.result(), referenceResult());
    EXPECT_EQ(app.iterations(), 40);
}

TEST(IntegrationSmoke, TicsSurvivesHeavyIntermittency)
{
    board::Board b(testConfig(),
                   std::make_unique<energy::PatternSupply>(20 * kNsPerMs,
                                                           0.5),
                   std::make_unique<timekeeper::PerfectTimekeeper>());
    tics::TicsConfig cfg;
    cfg.policy = tics::PolicyKind::Timer;
    cfg.timerPeriod = 4 * kNsPerMs;
    tics::TicsRuntime rt(cfg);
    MiniApp app(b, rt);
    const auto res = b.run(rt, [&] { app.main(); }, 60 * kNsPerSec);
    EXPECT_TRUE(res.completed);
    EXPECT_GT(res.reboots, 0u);
    EXPECT_EQ(app.result(), referenceResult());
    EXPECT_EQ(app.iterations(), 40);
}

TEST(IntegrationSmoke, PlainCLosesProgressUnderIntermittency)
{
    board::Board b(testConfig(),
                   std::make_unique<energy::PatternSupply>(20 * kNsPerMs,
                                                           0.5),
                   std::make_unique<timekeeper::PerfectTimekeeper>());
    runtimes::PlainCRuntime rt;
    MiniApp app(b, rt);
    const auto res = b.run(rt, [&] { app.main(); }, 2 * kNsPerSec);
    // Each on-window is too short to finish 40 iterations from
    // scratch, so plain C never completes within the budget ... or if
    // it does complete, the NV accumulator kept partial sums from the
    // failed attempts and the result is wrong.
    if (res.completed)
        EXPECT_NE(app.result(), referenceResult());
    else
        EXPECT_GT(res.reboots, 0u);
}
