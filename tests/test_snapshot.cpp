/**
 * @file
 * Snapshot / fork tests: in-place Board snapshot+restore round-trips
 * across the whole campaign matrix (byte-identical NV, identical
 * RunResult, identical event timeline vs a from-scratch run), board
 * isolation under concurrent exploration, the exhaustive explorer's
 * protection-split and shard-count invariance, and ddmin-via-fork
 * parity (same minimal plans as the from-boot shrinker, fewer
 * simulated cycles).
 */

#include <cstring>
#include <gtest/gtest.h>
#include <thread>

#include "analysis/replay_oracle.hpp"
#include "board/board.hpp"
#include "board/runtime.hpp"
#include "energy/supply.hpp"
#include "fault/campaign.hpp"
#include "fault/explore.hpp"
#include "fault/injector.hpp"
#include "mem/journal.hpp"
#include "mem/store_gate.hpp"
#include "mem/trace.hpp"
#include "timekeeper/timekeeper.hpp"

using namespace ticsim;

namespace {

/** Explorer-scale workloads: small enough that every pair's recording
 *  stays in the hundreds of decision points. */
fault::CampaignConfig
smallConfig()
{
    fault::CampaignConfig cfg;
    cfg.bc.iterations = 2;
    cfg.cuckoo.workScale = 1.0;
    cfg.cuckoo.keys = 8;
    return cfg;
}

fault::PairSpec
findPair(const fault::CampaignConfig &cfg, const std::string &app,
         const std::string &runtime)
{
    for (fault::PairSpec &s : fault::campaignPairs(cfg))
        if (s.app == app && s.runtime == runtime)
            return std::move(s);
    ADD_FAILURE() << "no pair " << app << "/" << runtime;
    return {};
}

/** What one run left behind, for cross-run equality checks. */
struct RunTrace {
    board::RunResult res;
    bool verified = false;
    analysis::ArenaSnapshot nv;
    std::vector<telemetry::Event> events;
};

RunTrace
traceOf(board::Board &board, const fault::PairEnv &env,
        const board::RunResult &res)
{
    RunTrace t;
    t.res = res;
    t.verified = env.verify();
    t.nv = analysis::ReplayOracle::capture(
        board.nvram(), analysis::ReplayOracle::appStateFilter());
    t.events = board.events().snapshot();
    return t;
}

void
expectSameRun(const RunTrace &a, const RunTrace &b, const char *what)
{
    EXPECT_EQ(a.res.completed, b.res.completed) << what;
    EXPECT_EQ(a.res.starved, b.res.starved) << what;
    EXPECT_EQ(a.res.reboots, b.res.reboots) << what;
    EXPECT_EQ(a.res.cycles, b.res.cycles) << what;
    EXPECT_EQ(a.res.elapsed, b.res.elapsed) << what;
    EXPECT_EQ(a.res.onTime, b.res.onTime) << what;
    EXPECT_EQ(a.verified, b.verified) << what;
    const analysis::ReplayReport diff =
        analysis::ReplayOracle::diff(a.nv, b.nv);
    EXPECT_TRUE(diff.clean())
        << what << ": " << diff.divergentBytes << " divergent bytes";
    ASSERT_EQ(a.events.size(), b.events.size()) << what;
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].at, b.events[i].at) << what << " [" << i << "]";
        EXPECT_EQ(a.events[i].kind, b.events[i].kind)
            << what << " [" << i << "]";
        EXPECT_EQ(a.events[i].arg0, b.events[i].arg0)
            << what << " [" << i << "]";
        EXPECT_EQ(a.events[i].arg1, b.events[i].arg1)
            << what << " [" << i << "]";
    }
}

/**
 * Minimal recording sink: counts in-context gated stores and commits
 * and captures one full (fiber) snapshot at the k-th, from inside the
 * application context — the same capture point the fork shrinker
 * uses. Commits matter because task-model pairs have no gated stores
 * at all (channel privatize/commit writes are journaled directly).
 * The resumed run re-enters the capture call, which returns false,
 * and falls through as if the recording run had never stopped.
 */
class SnapAtEvent : public mem::AccessSink, public mem::StoreGate
{
  public:
    SnapAtEvent(board::Board &board, std::uint64_t k)
        : board_(board), target_(k)
    {
    }

    bool captured() const { return captured_; }
    const board::Snapshot &snap() const { return snap_; }

    void memRead(const void *, std::uint32_t) override {}
    void memWrite(const void *, std::uint32_t) override {}
    void memVersioned(const void *, std::uint32_t) override {}
    void powerOn() override { started_ = true; }
    void commit() override { hit(); }

    void
    store(mem::StoreSite, void *dst, const void *src,
          std::uint32_t bytes) override
    {
        hit();
        mem::journalNote(dst, bytes);
        std::memcpy(dst, src, bytes);
    }

  private:
    void
    hit()
    {
        if (!captured_ && started_ && board_.ctx().inside() &&
            ++seen_ == target_ &&
            board_.snapshot(snap_, /*withFiber=*/true))
            captured_ = true;
    }

    board::Board &board_;
    std::uint64_t target_;
    std::uint64_t seen_ = 0;
    bool started_ = false;
    bool captured_ = false;
    board::Snapshot snap_;
};

} // namespace

// ---- snapshot / restore round-trips ----------------------------------------

TEST(SnapshotRoundTrip, ResumeAtStoreKMatchesFromScratchOnEveryPair)
{
    const fault::CampaignConfig cfg = smallConfig();
    for (const fault::PairSpec &spec : fault::campaignPairs(cfg)) {
        SCOPED_TRACE(spec.app + "/" + spec.runtime);

        // From-scratch baseline: no sink, no gate, no journal.
        RunTrace base;
        {
            board::BoardConfig bcfg;
            bcfg.seed = cfg.seed;
            board::Board board(
                bcfg, std::make_unique<energy::ContinuousSupply>(),
                std::make_unique<timekeeper::PerfectTimekeeper>());
            fault::PairEnv env = spec.make(board);
            board.beginRun(*env.runtime, env.entry, cfg.budget);
            base = traceOf(board, env, board.continueRun());
            ASSERT_TRUE(base.res.completed);
        }

        // Instrumented run: snapshot at the 2nd gated store, finish,
        // then rewind to the snapshot and finish again.
        board::BoardConfig bcfg;
        bcfg.seed = cfg.seed;
        board::Board board(
            bcfg, std::make_unique<energy::ContinuousSupply>(),
            std::make_unique<timekeeper::PerfectTimekeeper>());
        SnapAtEvent sink(board, 2);
        mem::ScopedAccessSink as(&sink);
        mem::ScopedStoreGate sg(&sink);
        fault::PairEnv env = spec.make(board);
        mem::WriteJournal journal;
        mem::ScopedWriteJournal sj(&journal);

        board.beginRun(*env.runtime, env.entry, cfg.budget);
        const RunTrace first = traceOf(board, env, board.continueRun());
        // Host-side observation (sink + gate + journal) must be free:
        // the instrumented run is the baseline run.
        expectSameRun(base, first, "instrumented vs baseline");
        ASSERT_TRUE(sink.captured());

        board.restore(sink.snap());
        const RunTrace second = traceOf(board, env, board.continueRun());
        expectSameRun(base, second, "restored vs baseline");
    }
}

TEST(SnapshotRoundTrip, RepeatedRestoreFromOneSnapshotIsIdempotent)
{
    const fault::CampaignConfig cfg = smallConfig();
    const fault::PairSpec spec = findPair(cfg, "BC", "TICS");

    board::BoardConfig bcfg;
    bcfg.seed = cfg.seed;
    board::Board board(bcfg,
                       std::make_unique<energy::ContinuousSupply>(),
                       std::make_unique<timekeeper::PerfectTimekeeper>());
    SnapAtEvent sink(board, 3);
    mem::ScopedAccessSink as(&sink);
    mem::ScopedStoreGate sg(&sink);
    fault::PairEnv env = spec.make(board);
    mem::WriteJournal journal;
    mem::ScopedWriteJournal sj(&journal);

    board.beginRun(*env.runtime, env.entry, cfg.budget);
    const RunTrace first = traceOf(board, env, board.continueRun());
    ASSERT_TRUE(sink.captured());

    // The same snapshot must replay identically any number of times —
    // the journal undo is a stack, not a one-shot.
    board.restore(sink.snap());
    const RunTrace second = traceOf(board, env, board.continueRun());
    board.restore(sink.snap());
    const RunTrace third = traceOf(board, env, board.continueRun());
    expectSameRun(first, second, "first replay");
    expectSameRun(first, third, "second replay");
}

// ---- fork determinism and isolation ----------------------------------------

TEST(ForkDeterminism, ConcurrentExplorationsShareNoState)
{
    // Two boards exploring concurrently on two threads: the sink,
    // store gate and write journal are thread-local, so each walk must
    // produce exactly what it produces alone.
    fault::ExploreConfig cfg;
    cfg.base = smallConfig();
    const fault::PairSpec tics = findPair(cfg.base, "BC", "TICS");
    const fault::PairSpec plain = findPair(cfg.base, "BC", "plain-C");

    const fault::PairExploreResult ticsAlone =
        fault::explorePair(cfg, tics);
    const fault::PairExploreResult plainAlone =
        fault::explorePair(cfg, plain);

    fault::PairExploreResult ticsConc, plainConc;
    std::thread t1(
        [&] { ticsConc = fault::explorePair(cfg, tics); });
    std::thread t2(
        [&] { plainConc = fault::explorePair(cfg, plain); });
    t1.join();
    t2.join();

    const auto expectSame = [](const fault::PairExploreResult &a,
                               const fault::PairExploreResult &b) {
        EXPECT_EQ(a.decisionPoints, b.decisionPoints);
        EXPECT_EQ(a.branchesTaken, b.branchesTaken);
        EXPECT_EQ(a.statesExplored, b.statesExplored);
        EXPECT_EQ(a.exhausted, b.exhausted);
        ASSERT_EQ(a.violations.size(), b.violations.size());
        for (std::size_t i = 0; i < a.violations.size(); ++i) {
            EXPECT_EQ(a.violations[i].plan, b.violations[i].plan);
            EXPECT_EQ(a.violations[i].kind, b.violations[i].kind);
        }
    };
    expectSame(ticsAlone, ticsConc);
    expectSame(plainAlone, plainConc);
}

TEST(ForkDeterminism, ShardCountDoesNotChangeTheExploration)
{
    fault::ExploreConfig serial;
    serial.base = smallConfig();
    serial.jobs = 1;
    fault::ExploreConfig sharded = serial;
    sharded.jobs = 3;

    const fault::PairSpec spec =
        findPair(serial.base, "BC", "plain-C");
    const fault::PairExploreResult a = fault::explorePair(serial, spec);
    const fault::PairExploreResult b = fault::explorePair(sharded, spec);

    EXPECT_EQ(a.decisionPoints, b.decisionPoints);
    EXPECT_EQ(a.branchesTaken, b.branchesTaken);
    EXPECT_EQ(a.statesExplored, b.statesExplored);
    EXPECT_EQ(a.confirmedViolations, b.confirmedViolations);
    ASSERT_EQ(a.violations.size(), b.violations.size());
    for (std::size_t i = 0; i < a.violations.size(); ++i)
        EXPECT_EQ(a.violations[i].plan, b.violations[i].plan);
}

// ---- the exhaustive explorer -----------------------------------------------

TEST(ExploreSplit, ProtectedPairIsExhaustedWithZeroViolations)
{
    fault::ExploreConfig cfg;
    cfg.base = smallConfig();
    cfg.jobs = 2;
    const fault::PairExploreResult r =
        fault::explorePair(cfg, findPair(cfg.base, "BC", "TICS"));

    EXPECT_TRUE(r.refCompleted);
    EXPECT_TRUE(r.recordingConsistent);
    EXPECT_TRUE(r.exhausted);
    EXPECT_EQ(r.frontierCutoffs, 0u);
    EXPECT_GT(r.decisionPoints, 0u);
    EXPECT_GE(r.statesExplored, r.decisionPoints);
    EXPECT_EQ(r.confirmedViolations, 0u);
}

TEST(ExploreSplit, PlainCViolationsAreFoundAndConfirmed)
{
    fault::ExploreConfig cfg;
    cfg.base = smallConfig();
    cfg.jobs = 2;
    const fault::PairExploreResult r =
        fault::explorePair(cfg, findPair(cfg.base, "BC", "plain-C"));

    EXPECT_TRUE(r.exhausted);
    EXPECT_GT(r.confirmedViolations, 0u);
    for (const auto &v : r.violations) {
        EXPECT_TRUE(v.confirmed) << v.plan;
        EXPECT_FALSE(v.kind.empty()) << v.plan;
        // Every reported plan must round-trip through the grammar
        // ticsfault --replay accepts.
        fault::FaultPlan p;
        std::string err;
        EXPECT_TRUE(fault::FaultPlan::parse(v.plan, p, &err))
            << v.plan << ": " << err;
    }
}

TEST(ExploreSplit, FrontierCapForfeitsExhaustionHonestly)
{
    fault::ExploreConfig cfg;
    cfg.base = smallConfig();
    cfg.maxDecisions = 2; // keep only the two latest decisions
    const fault::PairExploreResult r =
        fault::explorePair(cfg, findPair(cfg.base, "BC", "plain-C"));

    EXPECT_GT(r.frontierCutoffs, 0u);
    EXPECT_FALSE(r.exhausted);
}

// ---- ddmin via fork --------------------------------------------------------

TEST(ForkShrink, SameMinimalPlanAsFromBootButCheaper)
{
    const fault::CampaignConfig cfg = smallConfig();
    const fault::PairSpec spec = findPair(cfg, "BC", "plain-C");

    const fault::PairRunOutcome ref =
        fault::runPairWithPlan(cfg, spec, fault::FaultPlan{}, true);
    ASSERT_TRUE(ref.res.completed);

    // A known violating tear padded with a harmless absolute cut far
    // past the end of the run: ddmin must strip the cut and keep the
    // tear. The never-firing cut leaves the fork recorder free to
    // snapshot right up to the torn store, so the fork savings are
    // visible; a boot-anchored pad would force every evaluation back
    // to from-boot (occurrence 1 is behind any post-boot snapshot).
    fault::FaultPlan plan;
    std::string err;
    ASSERT_TRUE(fault::FaultPlan::parse(
        "cut@t:999000000000;tear@store:3/prefix:0;off:12000000", plan,
        &err))
        << err;
    const fault::PairRunOutcome sub =
        fault::runPairWithPlan(cfg, spec, plan, false);
    const fault::Classification cls = fault::classifyOutcome(ref, sub);
    ASSERT_FALSE(cls.kind.empty());

    const fault::Violation fromBoot =
        fault::shrinkViolationFromBoot(cfg, spec, ref, plan, cls);
    const fault::Violation forked =
        fault::forkShrinkViolation(cfg, spec, ref, plan, cls);

    EXPECT_TRUE(fromBoot.replayVerified);
    EXPECT_TRUE(forked.replayVerified);
    EXPECT_EQ(forked.plan, fromBoot.plan);
    EXPECT_EQ(forked.kind, fromBoot.kind);
    // The point of forking: evaluating candidates from a mid-run
    // snapshot simulates strictly fewer cycles than from-boot reruns.
    EXPECT_GT(fromBoot.shrinkCycles, 0u);
    EXPECT_LT(forked.shrinkCycles, fromBoot.shrinkCycles);
}

TEST(ForkShrink, CampaignForkShrinkMatchesFromBootCampaign)
{
    // End to end: the sampling campaign run with fork-based shrinking
    // must report exactly the same minimized schedules as the default
    // from-boot shrinker.
    fault::CampaignConfig cfg = smallConfig();
    cfg.randomSchedules = 2;
    fault::CampaignConfig forked = cfg;
    forked.forkShrink = true;

    const fault::CampaignReport a = fault::runCampaign(cfg);
    const fault::CampaignReport b = fault::runCampaign(forked);
    EXPECT_TRUE(a.ok());
    EXPECT_TRUE(b.ok());
    ASSERT_EQ(a.pairs.size(), b.pairs.size());
    for (std::size_t i = 0; i < a.pairs.size(); ++i) {
        ASSERT_EQ(a.pairs[i].found.size(), b.pairs[i].found.size())
            << a.pairs[i].app << "/" << a.pairs[i].runtime;
        for (std::size_t j = 0; j < a.pairs[i].found.size(); ++j)
            EXPECT_EQ(a.pairs[i].found[j].plan,
                      b.pairs[i].found[j].plan);
    }
}
