/**
 * @file
 * Unit tests for the persistent timekeepers: RTC hold-up/reset
 * semantics, drift, and the remanence estimator's bounded error and
 * saturation.
 */

#include <gtest/gtest.h>

#include "timekeeper/timekeeper.hpp"

using namespace ticsim;
using namespace ticsim::timekeeper;

TEST(PerfectTimekeeper, IsIdentity)
{
    PerfectTimekeeper tk;
    EXPECT_EQ(tk.read(0), 0u);
    EXPECT_EQ(tk.read(123 * kNsPerMs), 123 * kNsPerMs);
}

TEST(RtcCap, SurvivesShortOutage)
{
    RtcCapTimekeeper tk(kNsPerSec, /*driftPpm=*/0.0);
    tk.onPowerFail(100 * kNsPerMs);
    tk.onPowerOn(400 * kNsPerMs); // 300 ms outage < 1 s holdup
    EXPECT_EQ(tk.read(400 * kNsPerMs), 400 * kNsPerMs);
}

TEST(RtcCap, ResetsAfterLongOutage)
{
    RtcCapTimekeeper tk(100 * kNsPerMs, 0.0);
    tk.onPowerFail(kNsPerSec);
    tk.onPowerOn(3 * kNsPerSec); // 2 s outage > 100 ms holdup
    // The RTC restarted: the device now *underestimates* elapsed time.
    EXPECT_EQ(tk.read(3 * kNsPerSec), 0u);
    EXPECT_EQ(tk.read(3 * kNsPerSec + 50 * kNsPerMs), 50 * kNsPerMs);
}

TEST(RtcCap, DriftAccumulates)
{
    RtcCapTimekeeper tk(kNsPerSec, /*driftPpm=*/100.0);
    const TimeNs t = 1000 * kNsPerSec;
    const TimeNs est = tk.read(t);
    EXPECT_GT(est, t);
    EXPECT_NEAR(static_cast<double>(est - t), 1e-4 * t, 1e3);
}

TEST(RtcCap, ResetRestoresEpoch)
{
    RtcCapTimekeeper tk(10 * kNsPerMs, 0.0);
    tk.onPowerFail(kNsPerSec);
    tk.onPowerOn(2 * kNsPerSec);
    ASSERT_LT(tk.read(2 * kNsPerSec), kNsPerSec);
    tk.reset();
    EXPECT_EQ(tk.read(5 * kNsPerMs), 5 * kNsPerMs);
}

TEST(Remanence, ErrorIsBounded)
{
    const double frac = 0.2;
    RemanenceTimekeeper tk(frac, 10 * kNsPerSec, Rng(17));
    TimeNs now = 0;
    std::int64_t worstSkew = 0;
    TimeNs totalOff = 0;
    for (int i = 0; i < 50; ++i) {
        now += 30 * kNsPerMs; // on period
        tk.onPowerFail(now);
        const TimeNs off = 100 * kNsPerMs;
        now += off;
        totalOff += off;
        tk.onPowerOn(now);
        const std::int64_t skew = static_cast<std::int64_t>(tk.read(now)) -
                                  static_cast<std::int64_t>(now);
        worstSkew = std::max<std::int64_t>(worstSkew,
                                           skew < 0 ? -skew : skew);
    }
    // Every outage contributes at most frac * off of skew.
    EXPECT_LE(worstSkew,
              static_cast<std::int64_t>(frac * totalOff) + 1000);
    EXPECT_GT(worstSkew, 0); // it is genuinely noisy
}

TEST(Remanence, SaturatesAtHorizon)
{
    RemanenceTimekeeper tk(0.1, 500 * kNsPerMs, Rng(9));
    tk.onPowerFail(0);
    tk.onPowerOn(10 * kNsPerSec); // outage far beyond the horizon
    // The estimator could only measure 500 ms of a 10 s outage.
    const TimeNs est = tk.read(10 * kNsPerSec);
    EXPECT_NEAR(static_cast<double>(est),
                static_cast<double>(500 * kNsPerMs), 1e6);
}

TEST(Remanence, ResetReplaysDeterministically)
{
    RemanenceTimekeeper tk(0.3, 10 * kNsPerSec, Rng(5));
    tk.onPowerFail(kNsPerSec);
    tk.onPowerOn(2 * kNsPerSec);
    const TimeNs first = tk.read(2 * kNsPerSec);
    tk.reset();
    tk.onPowerFail(kNsPerSec);
    tk.onPowerOn(2 * kNsPerSec);
    EXPECT_EQ(tk.read(2 * kNsPerSec), first);
}
