/**
 * @file
 * Unit tests for the memory substrate: arena allocation/alignment,
 * typed nv<> accessors, write-interception hooks, and the Table 3
 * footprint ledger.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/footprint.hpp"
#include "mem/nv.hpp"
#include "mem/nvram.hpp"

using namespace ticsim;
using namespace ticsim::mem;

TEST(NvRam, AllocatesAlignedRegions)
{
    NvRam ram(4096);
    const Addr a = ram.allocate("a", 3, 1);
    const Addr b = ram.allocate("b", 8, 8);
    EXPECT_EQ(b % 8, 0u);
    EXPECT_GT(b, a);
    EXPECT_EQ(ram.regions().size(), 2u);
    EXPECT_EQ(ram.regions()[0].name, "a");
    EXPECT_GE(ram.used(), 11u);
}

TEST(NvRam, HostPointerRoundTrip)
{
    NvRam ram(1024);
    const Addr a = ram.allocate("x", 16);
    auto *p = ram.hostPtr(a);
    EXPECT_TRUE(ram.contains(p));
    EXPECT_TRUE(ram.contains(p + 15));
    EXPECT_EQ(ram.addrOf(p), a);
    int onStack = 0;
    EXPECT_FALSE(ram.contains(&onStack));
}

TEST(NvRam, TrafficAccounting)
{
    NvRam ram(256);
    ram.accountWrite(10);
    ram.accountWrite(6);
    ram.accountRead(4);
    EXPECT_EQ(ram.stats().counterValue("bytesWritten"), 16u);
    EXPECT_EQ(ram.stats().counterValue("writes"), 2u);
    EXPECT_EQ(ram.stats().counterValue("reads"), 1u);
}

namespace {

/** Recording hooks for interception tests. */
struct SpyHooks : MemHooks {
    std::vector<std::pair<void *, std::uint32_t>> writes;
    std::vector<std::pair<const void *, std::uint32_t>> reads;

    void
    preWrite(void *p, std::uint32_t n) override
    {
        writes.emplace_back(p, n);
    }

    void
    preRead(const void *p, std::uint32_t n) override
    {
        reads.emplace_back(p, n);
    }
};

} // namespace

TEST(Nv, WritesRouteThroughHooks)
{
    NvRam ram(1024);
    nv<int> x(ram, "x");
    SpyHooks spy;
    {
        ScopedHooks sh(&spy);
        x = 42;
        EXPECT_EQ(static_cast<int>(x), 42);
    }
    ASSERT_EQ(spy.writes.size(), 1u);
    EXPECT_EQ(spy.writes[0].first, x.raw());
    EXPECT_EQ(spy.writes[0].second, sizeof(int));
    ASSERT_EQ(spy.reads.size(), 1u);
}

TEST(Nv, HooksCapturePreWriteState)
{
    NvRam ram(1024);
    nv<int> x(ram, "x", 7);

    struct UndoingHooks : MemHooks {
        int captured = -1;
        void
        preWrite(void *p, std::uint32_t n) override
        {
            ASSERT_EQ(n, sizeof(int));
            std::memcpy(&captured, p, n); // must see the OLD value
        }
    } hooks;
    ScopedHooks sh(&hooks);
    x = 9;
    EXPECT_EQ(hooks.captured, 7);
    EXPECT_EQ(x.get(), 9);
}

TEST(Nv, CompoundOperators)
{
    NvRam ram(1024);
    nv<int> x(ram, "x", 10);
    x += 5;
    EXPECT_EQ(x.get(), 15);
    x -= 3;
    EXPECT_EQ(x.get(), 12);
    ++x;
    EXPECT_EQ(x.get(), 13);
}

TEST(Nv, ScopedHooksRestorePrevious)
{
    SpyHooks outer;
    SpyHooks inner;
    MemHooks *before = setHooks(nullptr); // pass-through
    {
        ScopedHooks a(&outer);
        {
            ScopedHooks b(&inner);
            EXPECT_EQ(&hooks(), &inner);
        }
        EXPECT_EQ(&hooks(), &outer);
    }
    setHooks(before);
}

TEST(NvArray, ElementAccessAndHooks)
{
    NvRam ram(2048);
    nvArray<std::uint16_t, 8> arr(ram, "arr");
    SpyHooks spy;
    {
        ScopedHooks sh(&spy);
        arr.set(3, 77);
        EXPECT_EQ(arr.get(3), 77);
    }
    ASSERT_EQ(spy.writes.size(), 1u);
    EXPECT_EQ(spy.writes[0].first, arr.raw() + 3);
    EXPECT_EQ(arr.size(), 8u);
}

TEST(Footprint, TotalsHonorExclusions)
{
    Footprint f;
    f.add("code", 1000, 0);
    f.add("buffers", 0, 256);
    f.add("segment array", 0, 4096, /*excluded=*/true);
    EXPECT_EQ(f.textTotal(), 1000u);
    EXPECT_EQ(f.dataTotal(), 256u);
    EXPECT_EQ(f.items().size(), 3u);
    f.clear();
    EXPECT_EQ(f.dataTotal(), 0u);
}
