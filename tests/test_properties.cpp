/**
 * @file
 * Property-based sweeps (TEST_P): the fundamental intermittent-
 * computing invariant — a protected program computes exactly what it
 * would compute on continuous power, for EVERY power schedule, seed,
 * segment size and policy — plus checkpoint-size boundedness and the
 * segment-protocol integrity property.
 */

#include <gtest/gtest.h>

#include "apps/bc/bc_legacy.hpp"
#include "apps/cuckoo/cuckoo_legacy.hpp"
#include "board/board.hpp"
#include "mem/nv.hpp"
#include "runtimes/mementos.hpp"
#include "tics/runtime.hpp"

using namespace ticsim;

namespace {

/** One randomized power schedule + runtime configuration. */
struct PropCase {
    std::uint64_t seed;
    TimeNs period;
    double duty;
    std::uint32_t segBytes;
    tics::PolicyKind policy;
};

std::string
caseName(const ::testing::TestParamInfo<PropCase> &info)
{
    const auto &p = info.param;
    std::string s = "seed" + std::to_string(p.seed) + "_per" +
                    std::to_string(p.period / kNsPerMs) + "ms_duty" +
                    std::to_string(static_cast<int>(p.duty * 100)) +
                    "_seg" + std::to_string(p.segBytes) + "_";
    switch (p.policy) {
      case tics::PolicyKind::Timer:
        s += "timer";
        break;
      case tics::PolicyKind::EveryTrigger:
        s += "every";
        break;
      default:
        s += "none";
        break;
    }
    return s;
}

std::vector<PropCase>
makeCases()
{
    std::vector<PropCase> cases;
    Rng r(0xC0DE);
    for (int i = 0; i < 12; ++i) {
        PropCase c;
        c.seed = r.next();
        do {
            c.period = (8 + r.below(40)) * kNsPerMs;
            c.duty = 0.35 + r.uniform() * 0.45;
            // Keep each power burst longer than the checkpoint timer,
            // otherwise timer-policy runs legitimately starve (see
            // bench/ablation_policy) and the correctness property is
            // vacuous.
        } while (static_cast<double>(c.period) * c.duty <
                 7.0 * kNsPerMs);
        const std::uint32_t segs[] = {50, 64, 128, 256, 384};
        c.segBytes = segs[r.below(5)];
        c.policy = r.chance(0.5) ? tics::PolicyKind::Timer
                                 : tics::PolicyKind::EveryTrigger;
        cases.push_back(c);
    }
    return cases;
}

std::unique_ptr<board::Board>
boardFor(const PropCase &c)
{
    board::BoardConfig cfg;
    cfg.seed = c.seed;
    return std::make_unique<board::Board>(
        cfg, std::make_unique<energy::PatternSupply>(c.period, c.duty),
        std::make_unique<timekeeper::PerfectTimekeeper>());
}

tics::TicsConfig
ticsFor(const PropCase &c)
{
    tics::TicsConfig cfg;
    cfg.segmentBytes = c.segBytes;
    cfg.segmentCount = 48;
    cfg.policy = c.policy;
    cfg.timerPeriod = 4 * kNsPerMs;
    return cfg;
}

class PowerScheduleProperty : public ::testing::TestWithParam<PropCase>
{
};

} // namespace

TEST_P(PowerScheduleProperty, BcMatchesContinuousResult)
{
    const auto &c = GetParam();
    auto b = boardFor(c);
    tics::TicsRuntime rt(ticsFor(c));
    apps::BcParams p;
    p.iterations = 24;
    apps::BcLegacyApp app(*b, rt, p);
    const auto res = b->run(rt, [&] { app.main(); }, 600 * kNsPerSec);
    ASSERT_TRUE(res.completed) << "starved=" << res.starved;
    EXPECT_TRUE(app.verify())
        << "total=" << app.totalBits()
        << " expected=" << apps::BcLegacyApp::expectedTotal(p);
}

TEST_P(PowerScheduleProperty, CuckooMatchesContinuousResult)
{
    const auto &c = GetParam();
    auto b = boardFor(c);
    tics::TicsRuntime rt(ticsFor(c));
    apps::CuckooParams p;
    p.keys = 40;
    apps::CuckooLegacyApp app(*b, rt, p);
    const auto res = b->run(rt, [&] { app.main(); }, 600 * kNsPerSec);
    ASSERT_TRUE(res.completed) << "starved=" << res.starved;
    EXPECT_TRUE(app.verify()) << "inserted=" << app.inserted()
                              << " recovered=" << app.recovered();
}

TEST_P(PowerScheduleProperty, MementosAlsoPreservesCorrectness)
{
    const auto &c = GetParam();
    auto b = boardFor(c);
    runtimes::MementosConfig mc;
    mc.trigger = runtimes::MementosConfig::Trigger::Timer;
    mc.timerPeriod = 4 * kNsPerMs;
    runtimes::MementosRuntime rt(mc);
    apps::BcParams p;
    p.iterations = 24;
    apps::BcLegacyApp app(*b, rt, p);
    const auto res = b->run(rt, [&] { app.main(); }, 600 * kNsPerSec);
    if (res.completed)
        EXPECT_TRUE(app.verify());
    // (The naive checkpointer may legitimately starve on harsh
    // schedules — correctness is only claimed for completed runs.)
}

INSTANTIATE_TEST_SUITE_P(RandomSchedules, PowerScheduleProperty,
                         ::testing::ValuesIn(makeCases()), caseName);

// ---- bounded-checkpoint property -------------------------------------------

namespace {

class SegmentSizeProperty
    : public ::testing::TestWithParam<std::uint32_t>
{
};

} // namespace

TEST_P(SegmentSizeProperty, ModeledCheckpointCostIsBounded)
{
    // For every segment size, the modeled checkpoint cost charged by
    // the runtime must be exactly the configured bound — never a
    // function of program state size (TICS's headline property).
    const std::uint32_t seg = GetParam();
    board::BoardConfig cfg;
    auto b = std::make_unique<board::Board>(
        cfg, std::make_unique<energy::ContinuousSupply>(),
        std::make_unique<timekeeper::PerfectTimekeeper>());
    tics::TicsConfig tcfg;
    tcfg.segmentBytes = seg;
    tcfg.segmentCount = 48;
    tcfg.policy = tics::PolicyKind::None;
    tics::TicsRuntime rt(tcfg);
    mem::nvArray<std::uint32_t, 2000> big(b->nvram(), "big"); // 8 kB

    b->run(
        rt,
        [&] {
            board::FrameGuard fg(rt, 24);
            rt.checkpointNow();
            // Grow lots of program state; checkpoint again.
            for (std::uint32_t i = 0; i < 2000; i += 7)
                big.set(i, i);
            rt.checkpointNow();
        },
        60 * kNsPerSec);

    const auto &d = rt.stats().distribution("ckptCycles");
    ASSERT_GE(d.count(), 2u);
    const double expected = static_cast<double>(
        device::CostModel::linear(b->costs().ckptLogic,
                                  b->costs().ckptPerByte, seg));
    EXPECT_DOUBLE_EQ(d.min(), expected);
    EXPECT_DOUBLE_EQ(d.max(), expected); // state size is irrelevant
}

INSTANTIATE_TEST_SUITE_P(Sizes, SegmentSizeProperty,
                         ::testing::Values(50u, 64u, 128u, 256u, 512u,
                                           1024u));

// ---- WAR stress property ---------------------------------------------------

namespace {

class WarStressProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(WarStressProperty, AccumulatorExactUnderRandomFailures)
{
    // A read-modify-write accumulator bumped 64 times must end at
    // exactly 64 regardless of where failures land.
    const std::uint64_t seed = GetParam();
    board::BoardConfig cfg;
    cfg.seed = seed;
    Rng r(seed);
    TimeNs period;
    double duty;
    do {
        period = (6 + r.below(20)) * kNsPerMs;
        duty = 0.4 + r.uniform() * 0.4;
        // Bursts must outlast the 3 ms checkpoint timer or the run
        // legitimately starves (no new restore point per burst).
    } while (static_cast<double>(period) * duty < 5.5 * kNsPerMs);
    auto b = std::make_unique<board::Board>(
        cfg, std::make_unique<energy::PatternSupply>(period, duty),
        std::make_unique<timekeeper::PerfectTimekeeper>());
    tics::TicsConfig tcfg;
    tcfg.policy = tics::PolicyKind::Timer;
    tcfg.timerPeriod = 3 * kNsPerMs;
    tics::TicsRuntime rt(tcfg);
    mem::nv<std::uint64_t> acc(b->nvram(), "acc");

    const auto res = b->run(
        rt,
        [&] {
            board::FrameGuard fg(rt, 20);
            for (int i = 0; i < 64; ++i) {
                rt.triggerPoint();
                acc = acc.get() + 1;
                b->charge(900);
            }
        },
        600 * kNsPerSec);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(acc.get(), 64u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarStressProperty,
                         ::testing::Range<std::uint64_t>(1, 11));
