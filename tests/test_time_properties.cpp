/**
 * @file
 * Property sweeps for the time-sensitivity semantics: across random
 * power schedules and seeds, a TICS-annotated producer/consumer never
 * exhibits a timely-branch, misalignment or expiration violation, and
 * its freshness decisions agree with ground truth; the manual-time
 * twin of the same program violates on at least some schedules.
 */

#include <gtest/gtest.h>

#include "board/board.hpp"
#include "runtimes/mementos.hpp"
#include "tics/annotations.hpp"

using namespace ticsim;

namespace {

constexpr std::uint32_t kRounds = 50;
constexpr TimeNs kLifetime = 30 * kNsPerMs;

struct Schedule {
    std::uint64_t seed;
    TimeNs period;
    double duty;
};

std::vector<Schedule>
schedules()
{
    std::vector<Schedule> out;
    Rng r(0x7153);
    for (int i = 0; i < 8; ++i) {
        Schedule s;
        s.seed = r.next();
        do {
            s.period = (10 + r.below(50)) * kNsPerMs;
            s.duty = 0.4 + r.uniform() * 0.4;
        } while (static_cast<double>(s.period) * s.duty <
                 7.0 * kNsPerMs);
        out.push_back(s);
    }
    return out;
}

std::unique_ptr<board::Board>
boardFor(const Schedule &s)
{
    board::BoardConfig cfg;
    cfg.seed = s.seed;
    return std::make_unique<board::Board>(
        cfg, std::make_unique<energy::PatternSupply>(s.period, s.duty),
        std::make_unique<timekeeper::PerfectTimekeeper>());
}

std::uint64_t
violationTotal(const board::Board &b)
{
    const auto &m = const_cast<board::Board &>(b).monitor();
    return m.counts(board::ViolationKind::TimelyBranch).observed +
           m.counts(board::ViolationKind::Misalignment).observed +
           m.counts(board::ViolationKind::Expiration).observed;
}

class TimeSemanticsProperty : public ::testing::TestWithParam<Schedule>
{
};

std::string
schedName(const ::testing::TestParamInfo<Schedule> &info)
{
    return "per" + std::to_string(info.param.period / kNsPerMs) +
           "ms_duty" +
           std::to_string(static_cast<int>(info.param.duty * 100));
}

} // namespace

TEST_P(TimeSemanticsProperty, AnnotatedProgramNeverViolates)
{
    const auto &sc = GetParam();
    auto b = boardFor(sc);
    tics::TicsConfig cfg;
    cfg.segmentBytes = 128;
    cfg.policy = tics::PolicyKind::Timer;
    cfg.timerPeriod = 4 * kNsPerMs;
    tics::TicsRuntime rt(cfg);

    // The variable's own budget is slightly tighter than the scored
    // lifetime: the @= timestamp lands ~0.35 ms after the physical
    // sample (the undo-logged value write sits between them), and the
    // margin keeps the device-side freshness test conservative w.r.t.
    // true sample age — the same pattern the AR application uses.
    tics::Expiring<std::int32_t> reading(rt, b->nvram(), "reading",
                                         kLifetime - kNsPerMs);
    mem::nv<std::uint32_t> round(b->nvram(), "round");
    mem::nv<std::uint32_t> consumed(b->nvram(), "consumed");
    mem::nv<std::uint32_t> discarded(b->nvram(), "discarded");

    auto *bp = b.get();
    const auto res = b->run(
        rt,
        [&] {
            board::FrameGuard fg(rt, 20);
            while (round.get() < kRounds) {
                rt.triggerPoint();
                const std::uint64_t inst = round.get();
                // @= : sample and timestamp atomically.
                rt.beginAtomic();
                const std::int32_t v = bp->sampleTemp();
                bp->monitor().dataSampled(reading.id(), inst,
                                          bp->now());
                reading.assignTimed(v, inst);
                rt.endAtomic(true);
                // Variable-length processing: sometimes longer than
                // the freshness budget even without failures.
                bp->charge(4000 + bp->rng().below(12000));
                rt.triggerPoint();
                // @expires: consume only while fresh.
                const TimeNs entry = bp->now();
                const bool fresh =
                    tics::expires(rt, reading, inst, [&] {
                        bp->monitor().dataConsumed(
                            reading.id(), inst, kLifetime, entry);
                        bp->charge(300);
                    });
                if (fresh)
                    consumed += 1;
                else
                    discarded += 1;
                // @timely: alert only within a deadline of sampling.
                tics::timely(
                    rt, "alert", inst,
                    reading.timestamp() + 2 * kLifetime,
                    [&] { bp->charge(150); }, [] {});
                round = round.get() + 1;
            }
        },
        600 * kNsPerSec);

    ASSERT_TRUE(res.completed) << "starved=" << res.starved;
    const auto &mon = b->monitor();
    EXPECT_EQ(violationTotal(*b), 0u)
        << "tb="
        << mon.counts(board::ViolationKind::TimelyBranch).observed
        << " mis="
        << mon.counts(board::ViolationKind::Misalignment).observed
        << " exp="
        << mon.counts(board::ViolationKind::Expiration).observed;
    EXPECT_EQ(consumed.get() + discarded.get(), kRounds);
    // Schedules with outages longer than the budget must discard.
    if (sc.period - static_cast<TimeNs>(sc.period * sc.duty) >
        kLifetime) {
        EXPECT_GT(res.reboots, 0u);
    }
}

TEST(TimeSemanticsContrast, ManualTwinViolatesSomewhere)
{
    // The identical program with hand-rolled time handling on the
    // MementOS-like checkpointer: across the same schedules, at least
    // one run consumes stale data (legacy code has no freshness guard
    // that survives a checkpoint/restore cycle).
    std::uint64_t violations = 0;
    for (const auto &sc : schedules()) {
        auto b = boardFor(sc);
        runtimes::MementosConfig mc;
        mc.trigger = runtimes::MementosConfig::Trigger::Timer;
        mc.timerPeriod = 4 * kNsPerMs;
        runtimes::MementosRuntime rt(mc);
        mem::nv<std::int32_t> reading(b->nvram(), "reading");
        mem::nv<TimeNs> ts(b->nvram(), "ts");
        mem::nv<std::uint32_t> round(b->nvram(), "round");
        rt.trackGlobals(reading.raw(), 4);
        rt.trackGlobals(ts.raw(), sizeof(TimeNs));
        rt.trackGlobals(round.raw(), 4);
        auto *bp = b.get();
        b->run(
            rt,
            [&] {
                board::FrameGuard fg(rt, 20);
                while (round.get() < kRounds) {
                    rt.triggerPoint();
                    const std::uint64_t inst = round.get();
                    reading = bp->sampleTemp();
                    bp->monitor().dataSampled("reading", inst,
                                              bp->now());
                    bp->charge(1200); // the checkpointable gap
                    rt.triggerPoint();
                    ts = bp->deviceNow();
                    bp->monitor().timestampAssigned(
                        "reading", inst, ts.get(), 10 * kNsPerMs);
                    bp->charge(4000 + bp->rng().below(12000));
                    rt.triggerPoint();
                    // Unguarded consumption.
                    bp->monitor().dataConsumed("reading", inst,
                                               kLifetime, bp->now());
                    bp->charge(300);
                    round = round.get() + 1;
                }
            },
            600 * kNsPerSec);
        violations += violationTotal(*b);
    }
    EXPECT_GT(violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(RandomSchedules, TimeSemanticsProperty,
                         ::testing::ValuesIn(schedules()), schedName);
