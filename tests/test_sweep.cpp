/**
 * @file
 * Tests for the ticssweep subsystem: the work-stealing JobPool, grid
 * enumeration and JobId stability, parallel Welford merging, the
 * content-addressed result cache, cross-thread isolation of the
 * trace hooks, and the sweep engine's determinism contract (identical
 * results for any job count and any cache state).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "apps/bc/bc_legacy.hpp"
#include "harness/experiment.hpp"
#include "mem/trace.hpp"
#include "support/stats.hpp"
#include "sweep/cache.hpp"
#include "sweep/grid.hpp"
#include "sweep/job_pool.hpp"
#include "sweep/sweep.hpp"
#include "tics/runtime.hpp"

namespace ticsim {
namespace {

// ---- JobPool -----------------------------------------------------------

TEST(JobPool, RunsEveryIndexExactlyOnce)
{
    constexpr std::size_t kCount = 257;
    const auto hits = std::make_unique<std::atomic<int>[]>(kCount);
    const sweep::JobPool pool(4);
    pool.run(kCount, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(JobPool, SingleJobRunsInline)
{
    const auto caller = std::this_thread::get_id();
    const sweep::JobPool pool(1);
    std::size_t ran = 0;
    pool.run(5, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ++ran;
    });
    EXPECT_EQ(ran, 5u);
}

TEST(JobPool, PropagatesFirstException)
{
    const sweep::JobPool pool(4);
    EXPECT_THROW(pool.run(64,
                          [&](std::size_t i) {
                              if (i == 13)
                                  throw std::runtime_error("boom");
                          }),
                 std::runtime_error);
}

TEST(JobPool, ZeroCountIsANoop)
{
    const sweep::JobPool pool(4);
    bool ran = false;
    pool.run(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(JobPool, DefaultJobsIsPositive)
{
    EXPECT_GE(sweep::JobPool::defaultJobs(), 1u);
    EXPECT_GE(sweep::JobPool(0).jobs(), 1u);
}

// ---- grid enumeration --------------------------------------------------

/** Independent FNV-1a reimplementation pinning the hash function. */
std::uint64_t
refFnv(const std::string &s)
{
    std::uint64_t h = 14695981039346656037ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

TEST(Grid, CanonicalStringAndJobIdAreStable)
{
    sweep::Cell c;
    c.app = "AR";
    c.runtime = "TICS";
    c.segmentBytes = 256;
    c.seed = 11;
    // The exact canonical rendering is a persistence format (cache
    // keys, report job_ids): changing it invalidates every cache and
    // must be deliberate.
    EXPECT_EQ(c.canonical(),
              "app=AR|rt=TICS|supply=pattern:30:0.59999999999999998"
              "|cap_uf=0|seg=256|seed=11");
    EXPECT_EQ(c.jobId(), refFnv(c.canonical()));
    EXPECT_EQ(c.groupKey(),
              "app=AR|rt=TICS|supply=pattern:30:0.59999999999999998"
              "|cap_uf=0|seg=256");
    EXPECT_EQ(c.jobIdHex().size(), 16u);
}

TEST(Grid, SeedChangesJobIdButNotGroupKey)
{
    sweep::Cell a;
    a.app = "BC";
    a.runtime = "TICS";
    a.segmentBytes = 256;
    a.seed = 11;
    sweep::Cell b = a;
    b.seed = 12;
    EXPECT_NE(a.jobId(), b.jobId());
    EXPECT_EQ(a.groupKey(), b.groupKey());
}

TEST(Grid, NormalizationCollapsesIrrelevantAxes)
{
    sweep::GridSpec spec;
    spec.apps = {"BC"};
    spec.runtimes = {"plain-C"};
    spec.segments = {128, 256, 512};
    spec.capsUf = {0.0, 47.0};
    spec.seeds = {11};
    // Segment size is TICS-only and capacitance is harvested-only, so
    // the 3x2 sub-grid collapses into one plain-C cell.
    EXPECT_EQ(spec.cells().size(), 1u);

    spec.runtimes = {"TICS"};
    const auto cells = spec.cells();
    EXPECT_EQ(cells.size(), 3u);
    for (const auto &c : cells)
        EXPECT_EQ(c.capUf, 0.0);
}

TEST(Grid, EnumerationOrderIsCanonical)
{
    sweep::GridSpec a;
    a.apps = {"AR", "BC", "CF"};
    a.runtimes = {"TICS", "plain-C"};
    a.seeds = {11, 12};
    sweep::GridSpec b;
    b.apps = {"CF", "BC", "AR"};
    b.runtimes = {"plain-C", "TICS"};
    b.seeds = {12, 11};

    const auto ca = a.cells();
    const auto cb = b.cells();
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t i = 0; i < ca.size(); ++i)
        EXPECT_EQ(ca[i].canonical(), cb[i].canonical());
    for (std::size_t i = 1; i < ca.size(); ++i)
        EXPECT_LE(ca[i - 1].jobId(), ca[i].jobId());
}

TEST(Grid, ParseSupplyTokens)
{
    sweep::SupplyAxis a;
    EXPECT_TRUE(sweep::parseSupplyToken("continuous", a));
    EXPECT_EQ(a.kind, sweep::SupplyKind::Continuous);
    EXPECT_TRUE(sweep::parseSupplyToken("pattern:25:0.5", a));
    EXPECT_EQ(a.kind, sweep::SupplyKind::Pattern);
    EXPECT_DOUBLE_EQ(a.periodMs, 25.0);
    EXPECT_DOUBLE_EQ(a.onFraction, 0.5);
    EXPECT_TRUE(sweep::parseSupplyToken("rf", a));
    EXPECT_TRUE(a.harvested());

    EXPECT_FALSE(sweep::parseSupplyToken("pattern:0:0.5", a));
    EXPECT_FALSE(sweep::parseSupplyToken("pattern:30:1.5", a));
    EXPECT_FALSE(sweep::parseSupplyToken("pattern:30", a));
    EXPECT_FALSE(sweep::parseSupplyToken("solar", a));
}

TEST(Grid, ParseAxisRejectsBadInput)
{
    sweep::GridSpec spec;
    std::string err;
    EXPECT_FALSE(sweep::parseAxis(spec, "voltage", "3.3", err));
    EXPECT_NE(err.find("unknown axis"), std::string::npos);
    EXPECT_FALSE(sweep::parseAxis(spec, "apps", "AR, quake", err));
    EXPECT_FALSE(sweep::parseAxis(spec, "segments", "0", err));
    EXPECT_FALSE(sweep::parseAxis(spec, "seeds", "eleven", err));

    EXPECT_TRUE(sweep::parseAxis(spec, "apps", "ar, bc", err));
    ASSERT_EQ(spec.apps.size(), 2u);
    EXPECT_EQ(spec.apps[0], "AR");
    EXPECT_EQ(spec.apps[1], "BC");
}

TEST(Grid, ParseGridFile)
{
    const auto dir = std::filesystem::temp_directory_path();
    const auto path = dir / "ticssweep_test_grid.txt";
    {
        std::ofstream os(path);
        os << "# capacitor sweep\n"
           << "apps = bc\n"
           << "runtimes = tics, plain-c\n"
           << "supplies = rf\n"
           << "caps_uf = 10, 47\n"
           << "seeds = 11, 12\n";
    }
    sweep::GridSpec spec;
    std::string err;
    ASSERT_TRUE(sweep::parseGridFile(path.string(), spec, err)) << err;
    EXPECT_EQ(spec.apps, (std::vector<std::string>{"BC"}));
    EXPECT_EQ(spec.capsUf.size(), 2u);
    // 1 app x (TICS x 2 caps + plain-C x 2 caps) x 2 seeds.
    EXPECT_EQ(spec.cells().size(), 8u);

    {
        std::ofstream os(path);
        os << "apps bc\n";
    }
    sweep::GridSpec bad;
    EXPECT_FALSE(sweep::parseGridFile(path.string(), bad, err));
    EXPECT_NE(err.find(":1:"), std::string::npos);
    std::filesystem::remove(path);
}

// ---- Distribution::merge -----------------------------------------------

/** Deterministic LCG so the test needs no <random> seeding policy. */
double
lcgSample(std::uint64_t &state)
{
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) /
           static_cast<double>(1ull << 53) * 40.0;
}

TEST(DistributionMerge, ShardsMatchSinglePass)
{
    constexpr int kSamples = 4000;
    std::uint64_t state = 42;
    std::vector<double> xs;
    for (int i = 0; i < kSamples; ++i)
        xs.push_back(lcgSample(state));

    Distribution whole;
    for (const double x : xs)
        whole.sample(x);

    Distribution merged;
    for (int shard = 0; shard < 4; ++shard) {
        Distribution part;
        for (int i = shard; i < kSamples; i += 4)
            part.sample(xs[static_cast<std::size_t>(i)]);
        merged.merge(part);
    }

    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_DOUBLE_EQ(merged.min(), whole.min());
    EXPECT_DOUBLE_EQ(merged.max(), whole.max());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(merged.stddev(), whole.stddev(), 1e-9);
    // The histogram is a bucket-wise sum, so the percentiles are
    // identical, not merely close.
    EXPECT_DOUBLE_EQ(merged.p50(), whole.p50());
    EXPECT_DOUBLE_EQ(merged.p95(), whole.p95());
    EXPECT_DOUBLE_EQ(merged.p99(), whole.p99());
}

TEST(DistributionMerge, EmptyShardsAreIdentity)
{
    Distribution a;
    Distribution empty;
    a.sample(1.0);
    a.sample(3.0);

    Distribution b = a;
    b.merge(empty);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), a.mean());

    Distribution c;
    c.merge(a);
    EXPECT_EQ(c.count(), 2u);
    EXPECT_DOUBLE_EQ(c.mean(), a.mean());
    EXPECT_DOUBLE_EQ(c.stddev(), a.stddev());

    Distribution d;
    d.merge(empty);
    EXPECT_EQ(d.count(), 0u);
}

TEST(DistributionMerge, EncodeDecodeRoundTripsBitExactly)
{
    std::uint64_t state = 7;
    Distribution d;
    for (int i = 0; i < 100; ++i)
        d.sample(lcgSample(state));

    Distribution back;
    ASSERT_TRUE(back.decode(d.encode()));
    EXPECT_EQ(back.count(), d.count());
    // Bit-exact doubles: the cache depends on %.17g round-tripping.
    EXPECT_EQ(back.mean(), d.mean());
    EXPECT_EQ(back.stddev(), d.stddev());
    EXPECT_EQ(back.min(), d.min());
    EXPECT_EQ(back.max(), d.max());
    EXPECT_EQ(back.p95(), d.p95());
    EXPECT_EQ(back.encode(), d.encode());
}

TEST(DistributionMerge, DecodeRejectsGarbage)
{
    Distribution d;
    EXPECT_FALSE(d.decode("not a distribution"));
    EXPECT_FALSE(d.decode(""));
    EXPECT_FALSE(d.decode("3 1 2"));
    EXPECT_EQ(d.count(), 0u);
}

// ---- ResultCache -------------------------------------------------------

class SweepCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = (std::filesystem::temp_directory_path() /
                "ticssweep_test_cache")
                   .string();
        std::filesystem::remove_all(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    static sweep::Cell testCell()
    {
        sweep::Cell c;
        c.app = "BC";
        c.runtime = "TICS";
        c.segmentBytes = 256;
        c.seed = 11;
        return c;
    }

    static sweep::CellResult testResult()
    {
        sweep::CellResult r;
        r.completed = true;
        r.verified = true;
        r.reboots = 17;
        r.cycles = 123456789;
        r.elapsedNs = 987654321;
        r.onTimeNs = 600000000;
        r.simMs.sample(r.simMsValue());
        return r;
    }

    std::string dir_;
};

TEST_F(SweepCacheTest, StoreThenLookupRoundTrips)
{
    const sweep::ResultCache cache(dir_);
    ASSERT_TRUE(cache.enabled());
    const auto cell = testCell();
    const auto r = testResult();

    sweep::CellResult out;
    EXPECT_FALSE(cache.lookup(cell, out));
    cache.store(cell, r);
    ASSERT_TRUE(cache.lookup(cell, out));
    EXPECT_EQ(out.encode(), r.encode());
    EXPECT_EQ(out.simMs.encode(), r.simMs.encode());
}

TEST_F(SweepCacheTest, SaltMismatchIsAMiss)
{
    const sweep::ResultCache v1(dir_, "salt-v1");
    v1.store(testCell(), testResult());
    // A different code-version salt hashes to a different key file;
    // even a colliding key would fail the entry's salt echo.
    const sweep::ResultCache v2(dir_, "salt-v2");
    sweep::CellResult out;
    EXPECT_FALSE(v2.lookup(testCell(), out));
    sweep::CellResult again;
    EXPECT_TRUE(v1.lookup(testCell(), again));
}

TEST_F(SweepCacheTest, CorruptEntryIsAMiss)
{
    const sweep::ResultCache cache(dir_);
    cache.store(testCell(), testResult());
    {
        std::ofstream os(cache.entryPath(testCell()));
        os << "ticssweep-cache 1\ngarbage\n";
    }
    sweep::CellResult out;
    EXPECT_FALSE(cache.lookup(testCell(), out));
}

TEST_F(SweepCacheTest, EmptyDirDisablesCache)
{
    const sweep::ResultCache cache("");
    EXPECT_FALSE(cache.enabled());
    cache.store(testCell(), testResult()); // must not crash
    sweep::CellResult out;
    EXPECT_FALSE(cache.lookup(testCell(), out));
}

// ---- cross-thread hook isolation (the thread_local conversion) ---------

/** Counts every trace callback it receives. */
struct CountingSink final : mem::AccessSink {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t versioned = 0;
    std::uint64_t boots = 0;
    std::uint64_t commits = 0;

    void memRead(const void *, std::uint32_t) override { ++reads; }
    void memWrite(const void *, std::uint32_t) override { ++writes; }
    void memVersioned(const void *, std::uint32_t) override
    {
        ++versioned;
    }
    void powerOn() override { ++boots; }
    void commit() override { ++commits; }

    std::string summary() const
    {
        return std::to_string(reads) + " " + std::to_string(writes) +
               " " + std::to_string(versioned) + " " +
               std::to_string(boots) + " " + std::to_string(commits);
    }
};

/** One traced BC/TICS run under a reset pattern on this thread. */
std::string
tracedBcRun(TimeNs periodNs)
{
    const auto spec = harness::patternSpec(periodNs, 0.6);
    auto board = harness::makeBoard(spec, 11);
    tics::TicsConfig cfg;
    cfg.segmentBytes = 256;
    cfg.policy = tics::PolicyKind::Timer;
    cfg.timerPeriod = 10 * kNsPerMs;
    tics::TicsRuntime rt(cfg);
    apps::BcLegacyApp app(*board, rt);

    CountingSink sink;
    mem::ScopedSink scoped(&sink);
    board->run(rt, [&app] { app.main(); }, 600 * kNsPerSec);
    return sink.summary();
}

TEST(SweepIsolation, ConcurrentBoardsDoNotCrossTalk)
{
    // Serial baselines first: what each configuration's sink must see
    // when it runs alone on a quiet process.
    const std::string ref1 = tracedBcRun(30 * kNsPerMs);
    const std::string ref2 = tracedBcRun(11 * kNsPerMs);
    EXPECT_NE(ref1, "0 0 0 0 0");
    // Different reset periods produce different boot/commit histories,
    // which is what makes cross-talk detectable below.
    EXPECT_NE(ref1, ref2);

    // Now both configurations concurrently, each with its own
    // thread-local sink. Any leakage of one board's events into the
    // other thread's sink perturbs at least one of the counts.
    std::string got1;
    std::string got2;
    std::thread t1([&] { got1 = tracedBcRun(30 * kNsPerMs); });
    std::thread t2([&] { got2 = tracedBcRun(11 * kNsPerMs); });
    t1.join();
    t2.join();
    EXPECT_EQ(got1, ref1);
    EXPECT_EQ(got2, ref2);
}

// ---- sweep engine determinism ------------------------------------------

sweep::SweepConfig
smallSweep()
{
    sweep::SweepConfig cfg;
    cfg.grid.apps = {"BC"};
    cfg.grid.runtimes = {"TICS", "plain-C"};
    cfg.grid.seeds = {11, 12};
    cfg.useCache = false;
    // plain C never finishes under the pattern; keep its time-box
    // small so the test stays fast.
    cfg.unprotectedBudget = 200 * kNsPerMs;
    return cfg;
}

void
expectSameResults(const sweep::SweepResult &a,
                  const sweep::SweepResult &b)
{
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        EXPECT_EQ(a.cells[i].cell.canonical(),
                  b.cells[i].cell.canonical());
        EXPECT_EQ(a.cells[i].result.encode(),
                  b.cells[i].result.encode());
        EXPECT_EQ(a.cells[i].result.simMs.encode(),
                  b.cells[i].result.simMs.encode());
    }
    ASSERT_EQ(a.aggregates.size(), b.aggregates.size());
    for (std::size_t i = 0; i < a.aggregates.size(); ++i) {
        EXPECT_EQ(a.aggregates[i].groupKey, b.aggregates[i].groupKey);
        EXPECT_EQ(a.aggregates[i].simMs.encode(),
                  b.aggregates[i].simMs.encode());
    }
}

TEST(SweepEngine, ResultsAreIdenticalForAnyJobCount)
{
    auto cfg = smallSweep();
    cfg.jobs = 1;
    const auto serial = sweep::runSweep(cfg);
    cfg.jobs = 4;
    const auto parallel = sweep::runSweep(cfg);

    ASSERT_EQ(serial.cells.size(), 4u);
    EXPECT_EQ(serial.cacheHits, 0u);
    EXPECT_EQ(serial.cacheMisses, 0u);
    expectSameResults(serial, parallel);

    // The TICS cells complete and verify; the plain-C baseline under
    // the interrupting pattern does not.
    for (const auto &out : serial.cells) {
        if (out.cell.runtime == "TICS") {
            EXPECT_TRUE(out.result.completed) << out.cell.label();
            EXPECT_TRUE(out.result.verified) << out.cell.label();
        } else {
            EXPECT_FALSE(out.result.completed) << out.cell.label();
        }
    }
    // Two seeds per (app, runtime) group merge into one aggregate.
    ASSERT_EQ(serial.aggregates.size(), 2u);
    for (const auto &agg : serial.aggregates)
        EXPECT_EQ(agg.cellsMerged, 2u);
}

TEST(SweepEngine, CacheHitsReproduceFreshResults)
{
    const std::string dir = (std::filesystem::temp_directory_path() /
                             "ticssweep_test_engine_cache")
                                .string();
    std::filesystem::remove_all(dir);

    auto cfg = smallSweep();
    cfg.grid.runtimes = {"TICS"};
    cfg.useCache = true;
    cfg.cacheDir = dir;
    cfg.jobs = 2;

    const auto cold = sweep::runSweep(cfg);
    EXPECT_EQ(cold.cacheHits, 0u);
    EXPECT_EQ(cold.cacheMisses, cold.cells.size());

    const auto warm = sweep::runSweep(cfg);
    EXPECT_EQ(warm.cacheHits, warm.cells.size());
    EXPECT_EQ(warm.cacheMisses, 0u);
    for (const auto &out : warm.cells)
        EXPECT_TRUE(out.fromCache);
    expectSameResults(cold, warm);

    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace ticsim
