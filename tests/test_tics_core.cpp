/**
 * @file
 * Unit tests for the TICS building blocks: the undo log (append,
 * newest-first rollback, watermarks, overflow) and the stack-
 * segmentation protocol (grow/shrink transitions, the enforced-
 * checkpoint rule, frame-to-segment mapping).
 */

#include <gtest/gtest.h>

#include "mem/nvram.hpp"
#include "tics/segmentation.hpp"
#include "tics/undo_log.hpp"

using namespace ticsim;
using namespace ticsim::tics;

namespace {

struct UndoFixture : ::testing::Test {
    mem::NvRam ram{16 * 1024};
    UndoLog log{ram, "ul", 256, 16};
};

} // namespace

TEST_F(UndoFixture, RollbackRestoresOldValues)
{
    int a = 1, b = 2;
    log.append(&a, sizeof(a));
    a = 100;
    log.append(&b, sizeof(b));
    b = 200;
    EXPECT_EQ(log.entryCount(), 2u);
    EXPECT_EQ(log.rollback(), 2u);
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 2);
    EXPECT_EQ(log.entryCount(), 0u);
}

TEST_F(UndoFixture, NewestFirstWinsOnOverlap)
{
    int x = 1;
    log.append(&x, sizeof(x)); // logs 1
    x = 2;
    log.append(&x, sizeof(x)); // logs 2
    x = 3;
    log.rollback();
    // Applying newest-first ends with the OLDEST value.
    EXPECT_EQ(x, 1);
}

TEST_F(UndoFixture, WatermarkRollsBackSuffixOnly)
{
    int a = 1, b = 2;
    log.append(&a, sizeof(a));
    a = 10;
    const auto mark = log.entryCount();
    log.append(&b, sizeof(b));
    b = 20;
    EXPECT_EQ(log.rollbackTo(mark), 1u);
    EXPECT_EQ(b, 2);   // suffix undone
    EXPECT_EQ(a, 10);  // prefix untouched
    EXPECT_EQ(log.entryCount(), mark);
    EXPECT_EQ(log.rollback(), 1u);
    EXPECT_EQ(a, 1);
}

// Regression tests for the rollbackTo() watermark path (audited for
// out-of-order application and inconsistent pool truncation; both
// behaviors are pinned here).

TEST_F(UndoFixture, WatermarkWithOverlappingEntriesRestoresMarkValue)
{
    // Same address logged on both sides of the watermark: rolling back
    // the suffix must land on the value the location had AT the mark,
    // not the oldest value.
    int x = 1;
    log.append(&x, sizeof(x)); // prefix entry logs 1
    x = 2;
    const auto mark = log.entryCount();
    log.append(&x, sizeof(x)); // suffix entry logs 2
    x = 3;
    log.append(&x, sizeof(x)); // suffix entry logs 3
    x = 4;
    EXPECT_EQ(log.rollbackTo(mark), 2u);
    EXPECT_EQ(x, 2); // suffix applied newest-first ends at mark value
    EXPECT_EQ(log.rollback(), 1u);
    EXPECT_EQ(x, 1); // prefix still intact and applicable
}

TEST_F(UndoFixture, WatermarkTruncatesPoolConsistently)
{
    std::uint8_t buf[64] = {};
    log.append(buf, 8);
    log.append(buf + 8, 16);
    const auto mark = log.entryCount();
    const auto usedAtMark = log.usedBytes();
    log.append(buf + 24, 32);
    EXPECT_EQ(log.usedBytes(), usedAtMark + 32);
    log.rollbackTo(mark);
    // Pool watermark must return to the suffix-free high-water mark;
    // otherwise repeated append/rollbackTo cycles leak pool space.
    EXPECT_EQ(log.usedBytes(), usedAtMark);
    EXPECT_EQ(log.entryCount(), mark);
    // The reclaimed pool space is reusable without overflowing.
    for (int i = 0; i < 4; ++i) {
        ASSERT_FALSE(log.wouldOverflow(32));
        log.append(buf + 24, 32);
        log.rollbackTo(mark);
    }
    EXPECT_EQ(log.usedBytes(), usedAtMark);
    EXPECT_EQ(log.rollbackTo(0), 2u);
    EXPECT_EQ(log.usedBytes(), 0u);
}

TEST_F(UndoFixture, OverflowDetection)
{
    std::uint8_t buf[300] = {};
    EXPECT_FALSE(log.wouldOverflow(256));
    EXPECT_TRUE(log.wouldOverflow(257)); // pool too small
    log.append(buf, 200);
    EXPECT_TRUE(log.wouldOverflow(100)); // 200 + 100 > 256
    EXPECT_FALSE(log.wouldOverflow(56));
    log.clear();
    // Entry-table exhaustion.
    for (int i = 0; i < 16; ++i)
        log.append(buf + i, 1);
    EXPECT_TRUE(log.wouldOverflow(1));
}

TEST_F(UndoFixture, BytesSinceSumsSuffix)
{
    std::uint8_t buf[64] = {};
    log.append(buf, 8);
    log.append(buf + 8, 16);
    log.append(buf + 24, 4);
    EXPECT_EQ(log.bytesSince(0), 28u);
    EXPECT_EQ(log.bytesSince(1), 20u);
    EXPECT_EQ(log.bytesSince(3), 0u);
}

// ---- segmentation protocol -----------------------------------------------

TEST(Segmentation, FitsWithinSegment)
{
    Segmentation s;
    s.configure(100, 8);
    EXPECT_FALSE(s.frameEnter(40).grew);
    EXPECT_FALSE(s.frameEnter(40).grew);
    EXPECT_EQ(s.workingSegment(), 0);
    EXPECT_EQ(s.usedInWorking(), 80u);
    EXPECT_FALSE(s.frameExit().shrunk);
    EXPECT_EQ(s.usedInWorking(), 40u);
}

TEST(Segmentation, GrowsWhenFrameDoesNotFit)
{
    Segmentation s;
    s.configure(100, 8);
    s.frameEnter(80);
    const auto a = s.frameEnter(40); // 80 + 40 > 100
    EXPECT_TRUE(a.grew);
    EXPECT_EQ(s.workingSegment(), 1);
    EXPECT_EQ(s.usedInWorking(), 40u);
    EXPECT_EQ(s.modeledStackBytes(), 120u);
}

TEST(Segmentation, FirstShrinkForcesBootstrapCheckpoint)
{
    Segmentation s;
    s.configure(100, 8);
    s.frameEnter(80);
    s.frameEnter(40); // grow to segment 1
    const auto a = s.frameExit();
    EXPECT_TRUE(a.shrunk);
    // Nothing was ever checkpointed: the paper's "working stack not
    // saved yet" rule forces one now.
    EXPECT_TRUE(a.forceCheckpoint);
}

TEST(Segmentation, ShrinkPastCheckpointedSegmentForces)
{
    Segmentation s;
    s.configure(100, 8);
    s.frameEnter(80);       // seg 0
    s.frameEnter(40);       // seg 1
    s.noteCheckpointed();   // checkpoint holds seg 1
    EXPECT_EQ(s.checkpointedSegment(), 1);
    const auto a = s.frameExit(); // back to seg 0; ckpt out of stack
    EXPECT_TRUE(a.shrunk);
    EXPECT_TRUE(a.forceCheckpoint);
}

TEST(Segmentation, ShrinkBelowCheckpointedSegmentDoesNotForce)
{
    Segmentation s;
    s.configure(100, 8);
    s.frameEnter(80);     // seg 0
    s.noteCheckpointed(); // checkpoint holds seg 0
    s.frameEnter(40);     // grow to seg 1
    const auto a = s.frameExit(); // back to seg 0 == checkpointed
    EXPECT_TRUE(a.shrunk);
    EXPECT_FALSE(a.forceCheckpoint);
}

TEST(Segmentation, DeepRecursionWalksSegments)
{
    Segmentation s;
    s.configure(50, 16);
    for (int i = 0; i < 20; ++i)
        s.frameEnter(12); // 4 frames per segment
    EXPECT_EQ(s.workingSegment(), 4);
    EXPECT_EQ(s.depth(), 20u);
    for (int i = 0; i < 20; ++i)
        s.frameExit();
    EXPECT_EQ(s.workingSegment(), 0);
    EXPECT_EQ(s.depth(), 0u);
    EXPECT_EQ(s.modeledStackBytes(), 0u);
}

TEST(Segmentation, StateIsCopyAssignable)
{
    Segmentation s;
    s.configure(100, 8);
    s.frameEnter(80);
    s.frameEnter(40);
    s.noteCheckpointed();
    Segmentation copy = s; // checkpointed with the register snapshot
    s.frameExit();
    s.frameExit();
    EXPECT_EQ(copy.workingSegment(), 1);
    EXPECT_EQ(copy.depth(), 2u);
    EXPECT_EQ(copy.checkpointedSegment(), 1);
    EXPECT_EQ(s.depth(), 0u);
}

TEST(SegmentationDeath, FrameLargerThanSegmentPanics)
{
    Segmentation s;
    s.configure(50, 8);
    EXPECT_DEATH(s.frameEnter(60), "larger than a stack segment");
}

TEST(SegmentationDeath, SegmentArrayExhaustionPanics)
{
    Segmentation s;
    s.configure(50, 2);
    s.frameEnter(50);
    s.frameEnter(50);
    EXPECT_DEATH(s.frameEnter(50), "segment array exhausted");
}
