/**
 * @file
 * Tests for the memory-consistency analysis subsystem: the WAR
 * detector on hand-built interval traces (every boundary case of the
 * Surbatovich condition), the replay oracle's diff localization, and
 * the end-to-end acceptance split — protected runtimes report no
 * materialized hazard and no divergence, the unprotected plain-C
 * baseline reports both.
 */

#include <gtest/gtest.h>

#include "analysis/checker.hpp"
#include "analysis/replay_oracle.hpp"
#include "analysis/war_detector.hpp"
#include "mem/nvram.hpp"

using namespace ticsim;
using namespace ticsim::analysis;

namespace {

struct DetectorFixture : ::testing::Test {
    mem::NvRam ram{4096};
    Addr g = ram.allocate("glob", 64, 8);
    WarHazardDetector det{ram};

    static IntervalTrace
    interval(std::uint64_t boot, IntervalEnd end,
             std::vector<AccessEvent> events)
    {
        IntervalTrace iv;
        iv.boot = boot;
        iv.end = end;
        iv.events = std::move(events);
        return iv;
    }
};

} // namespace

TEST_F(DetectorFixture, CoveredWarIsClean)
{
    // Read, then versioned before the write: the condition holds.
    const auto report = det.analyze({interval(
        1, IntervalEnd::PowerFailed,
        {{AccessKind::Read, g, 8},
         {AccessKind::Versioned, g, 8},
         {AccessKind::Write, g, 8}})});
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.intervalsAnalyzed, 1u);
}

TEST_F(DetectorFixture, UncoveredWarIsFlaggedAndAttributed)
{
    const auto report = det.analyze({interval(
        3, IntervalEnd::PowerFailed,
        {{AccessKind::Read, g + 4, 4}, {AccessKind::Write, g + 4, 4}})});
    ASSERT_EQ(report.hazards.size(), 1u);
    const WarHazard &h = report.hazards[0];
    EXPECT_EQ(h.region, "glob");
    EXPECT_EQ(h.offset, 4u);
    EXPECT_EQ(h.bytes, 4u);
    EXPECT_EQ(h.boot, 3u);
    EXPECT_TRUE(h.materialized);
    EXPECT_EQ(report.materialized(), 1u);
    EXPECT_EQ(report.latent(), 0u);
}

TEST_F(DetectorFixture, ReadOnlyIntervalIsClean)
{
    const auto report = det.analyze(
        {interval(1, IntervalEnd::PowerFailed,
                  {{AccessKind::Read, g, 8},
                   {AccessKind::Read, g + 8, 16}})});
    EXPECT_TRUE(report.clean());
}

TEST_F(DetectorFixture, WriteBeforeReadIsClean)
{
    // The read observes interval-local data; re-execution regenerates
    // it, so there is nothing stale to re-read.
    const auto report = det.analyze({interval(
        1, IntervalEnd::PowerFailed,
        {{AccessKind::Write, g, 4},
         {AccessKind::Read, g, 4},
         {AccessKind::Write, g, 4}})});
    EXPECT_TRUE(report.clean());
}

TEST_F(DetectorFixture, CommitBoundaryResetsCoverageAndReadSets)
{
    // Interval 1: covered WAR, committed (the undo log is cleared at
    // the commit). Interval 2 re-reads and re-writes the same bytes
    // WITHOUT fresh coverage: the cleared log no longer protects them.
    const auto report = det.analyze(
        {interval(1, IntervalEnd::Committed,
                  {{AccessKind::Read, g, 8},
                   {AccessKind::Versioned, g, 8},
                   {AccessKind::Write, g, 8}}),
         interval(1, IntervalEnd::PowerFailed,
                  {{AccessKind::Read, g, 8},
                   {AccessKind::Write, g, 8}})});
    ASSERT_EQ(report.hazards.size(), 1u);
    EXPECT_EQ(report.hazards[0].interval, 1u);
    EXPECT_TRUE(report.hazards[0].materialized);
}

TEST_F(DetectorFixture, VersionedAfterWriteIsTooLate)
{
    const auto report = det.analyze({interval(
        1, IntervalEnd::PowerFailed,
        {{AccessKind::Read, g, 4},
         {AccessKind::Write, g, 4},
         {AccessKind::Versioned, g, 4}})});
    ASSERT_EQ(report.hazards.size(), 1u);
}

TEST_F(DetectorFixture, PartialCoverageFlagsOnlyUncoveredBytes)
{
    const auto report = det.analyze({interval(
        1, IntervalEnd::PowerFailed,
        {{AccessKind::Read, g, 8},
         {AccessKind::Versioned, g, 4}, // first half only
         {AccessKind::Write, g, 8}})});
    ASSERT_EQ(report.hazards.size(), 1u);
    EXPECT_EQ(report.hazards[0].offset, 4u);
    EXPECT_EQ(report.hazards[0].bytes, 4u);
}

TEST_F(DetectorFixture, OverlappingNonIdenticalRangesFlagOverlapOnly)
{
    // The read and the write are different, overlapping ranges; only
    // the intersection was read-then-written. Per-byte evaluation must
    // flag exactly those bytes, not either access's full extent.
    const auto report = det.analyze({interval(
        1, IntervalEnd::PowerFailed,
        {{AccessKind::Read, g, 4},        // [0, 4)
         {AccessKind::Write, g + 2, 4}}   // [2, 6) -> overlap [2, 4)
        )});
    ASSERT_EQ(report.hazards.size(), 1u);
    EXPECT_EQ(report.hazards[0].offset, 2u);
    EXPECT_EQ(report.hazards[0].bytes, 2u);
}

TEST_F(DetectorFixture, StraddlingVersioningSplitsHazardRanges)
{
    // A wide read-then-write whose versioning covers a slice in the
    // middle: the hazard must split into the two uncovered flanks.
    const auto report = det.analyze({interval(
        1, IntervalEnd::PowerFailed,
        {{AccessKind::Read, g, 8},
         {AccessKind::Versioned, g + 3, 2}, // [3, 5) covered
         {AccessKind::Write, g, 8}})});
    ASSERT_EQ(report.hazards.size(), 2u);
    EXPECT_EQ(report.hazards[0].offset, 0u);
    EXPECT_EQ(report.hazards[0].bytes, 3u);
    EXPECT_EQ(report.hazards[1].offset, 5u);
    EXPECT_EQ(report.hazards[1].bytes, 3u);
}

TEST_F(DetectorFixture, StraddlingRegionBoundarySplitsAttribution)
{
    // One access straddling two adjacent NV regions: the contiguous
    // hazardous range must become one hazard per region, each with
    // in-region offsets, instead of a single range mis-attributed to
    // whichever region holds the first byte.
    mem::NvRam ram2{4096};
    const Addr a = ram2.allocate("left", 8, 8);
    const Addr b = ram2.allocate("right", 8, 8);
    ASSERT_EQ(b, a + 8); // adjacent by construction
    const auto report = WarHazardDetector(ram2).analyze({interval(
        1, IntervalEnd::PowerFailed,
        {{AccessKind::Read, a + 6, 4},   // left[6..8) + right[0..2)
         {AccessKind::Write, a + 6, 4}})});
    ASSERT_EQ(report.hazards.size(), 2u);
    EXPECT_EQ(report.hazards[0].region, "left");
    EXPECT_EQ(report.hazards[0].offset, 6u);
    EXPECT_EQ(report.hazards[0].bytes, 2u);
    EXPECT_EQ(report.hazards[1].region, "right");
    EXPECT_EQ(report.hazards[1].offset, 0u);
    EXPECT_EQ(report.hazards[1].bytes, 2u);
}

TEST_F(DetectorFixture, CommittedIntervalHazardIsLatent)
{
    const auto report = det.analyze(
        {interval(1, IntervalEnd::Committed,
                  {{AccessKind::Read, g, 4},
                   {AccessKind::Write, g, 4}})});
    ASSERT_EQ(report.hazards.size(), 1u);
    EXPECT_FALSE(report.hazards[0].materialized);
    EXPECT_EQ(report.materialized(), 0u);
    EXPECT_EQ(report.latent(), 1u);
}

// ---- replay oracle -------------------------------------------------------

TEST(ReplayOracle, DiffLocalizesDivergentRuns)
{
    mem::NvRam a{1024}, b{1024};
    a.allocate("app.x", 16, 8);
    b.allocate("app.x", 16, 8);
    a.hostPtr(0)[3] = 1;
    b.hostPtr(0)[3] = 2;
    b.hostPtr(0)[4] = 9; // adjacent: one run of 2 bytes
    b.hostPtr(0)[10] = 7;

    const auto filter = ReplayOracle::appStateFilter();
    const auto report = ReplayOracle::diff(
        ReplayOracle::capture(a, filter),
        ReplayOracle::capture(b, filter));
    ASSERT_EQ(report.divergences.size(), 2u);
    EXPECT_EQ(report.divergences[0].region, "app.x");
    EXPECT_EQ(report.divergences[0].offset, 3u);
    EXPECT_EQ(report.divergences[0].bytes, 2u);
    EXPECT_EQ(report.divergences[1].offset, 10u);
    EXPECT_EQ(report.divergentBytes, 3u);
    EXPECT_EQ(report.regionMismatches, 0u);
}

TEST(ReplayOracle, FilterDropsRuntimeInternalRegions)
{
    const auto filter = ReplayOracle::appStateFilter();
    const auto keep = [&](const char *name) {
        mem::NvRegion r;
        r.name = name;
        return filter(r);
    };
    EXPECT_FALSE(keep("app-stack"));
    EXPECT_FALSE(keep("tics.undo.pool"));
    EXPECT_FALSE(keep("chinchilla.versions.entries"));
    EXPECT_FALSE(keep("mementos.globals0"));
    EXPECT_FALSE(keep("chan.bc.total.s"));
    EXPECT_FALSE(keep("chan.bc.total.ts"));
    EXPECT_TRUE(keep("chan.bc.total.v"));
    EXPECT_TRUE(keep("bc.totalBits"));
    EXPECT_TRUE(keep("cf.table"));
}

TEST(ReplayOracle, LayoutMismatchIsReported)
{
    mem::NvRam a{1024}, b{1024};
    a.allocate("only.in.a", 8, 8);
    b.allocate("only.in.b", 8, 8);
    const auto filter = ReplayOracle::appStateFilter();
    const auto report = ReplayOracle::diff(
        ReplayOracle::capture(a, filter),
        ReplayOracle::capture(b, filter));
    EXPECT_FALSE(report.clean());
    EXPECT_EQ(report.regionMismatches, 2u);
}

// ---- end-to-end acceptance split -----------------------------------------

TEST(TicscheckMatrix, ProtectedRuntimesConsistentPlainCNot)
{
    const auto findings = checkMatrix(CheckConfig{});
    ASSERT_EQ(findings.size(), 10u);

    for (const auto &f : findings) {
        SCOPED_TRACE(f.app + " under " + f.runtime);
        ASSERT_TRUE(f.refCompleted);
        EXPECT_TRUE(scenarioOk(f));
        if (!f.isProtected) {
            // The unprotected baseline must demonstrably be
            // interrupted mid-interval and corrupt its state.
            EXPECT_GT(f.subject.reboots, 0u);
            EXPECT_GE(f.war.materialized(), 1u);
            EXPECT_GE(f.replay.divergentBytes, 1u);
            continue;
        }
        EXPECT_TRUE(f.subject.completed);
        EXPECT_TRUE(f.verified);
        EXPECT_EQ(f.war.materialized(), 0u);
        EXPECT_EQ(f.replay.divergentBytes, 0u);
        EXPECT_EQ(f.replay.regionMismatches, 0u);
        // Log- and task-based systems version eagerly; MementOS-like
        // used to carry latent-only findings from the uncovered
        // pre-first-checkpoint window, but the genesis-snapshot
        // hardening covers that window too, so every protected
        // runtime is now fully clean.
        EXPECT_TRUE(f.war.clean());
        // The subject must actually have been exercised: reboots
        // happened and intervals were traced.
        EXPECT_GT(f.subject.reboots, 0u);
        EXPECT_GT(f.intervals, 0u);
        EXPECT_GT(f.nvWriteBytes, 0u);
    }
}
