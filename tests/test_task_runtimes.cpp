/**
 * @file
 * Tests of the task-based baselines: channel privatization and commit,
 * restart idempotence after failures, transition accounting, InK
 * periodic events, and MayFly graph validation / edge expiry /
 * periodic re-dispatch.
 */

#include <gtest/gtest.h>

#include "board/board.hpp"
#include "runtimes/ink.hpp"
#include "runtimes/mayfly.hpp"
#include "runtimes/task_core.hpp"

using namespace ticsim;
using namespace ticsim::taskrt;

namespace {

std::unique_ptr<board::Board>
contBoard()
{
    return std::make_unique<board::Board>(
        board::BoardConfig{}, std::make_unique<energy::ContinuousSupply>(),
        std::make_unique<timekeeper::PerfectTimekeeper>());
}

std::unique_ptr<board::Board>
patternBoard(TimeNs period, double duty)
{
    return std::make_unique<board::Board>(
        board::BoardConfig{},
        std::make_unique<energy::PatternSupply>(period, duty),
        std::make_unique<timekeeper::PerfectTimekeeper>());
}

} // namespace

TEST(Channel, ReadsSeeOwnUncommittedWrites)
{
    auto b = contBoard();
    TaskRuntime rt;
    Channel<int> ch(rt, b->nvram(), "c");
    int observedInside = -1;
    rt.addTask("t", [&]() -> TaskId {
        ch.set(5);
        observedInside = ch.get(); // privatized read-own-write
        return kTaskDone;
    });
    b->run(rt, {}, kNsPerSec);
    EXPECT_EQ(observedInside, 5);
    EXPECT_EQ(ch.committed(), 5); // committed at the transition
}

TEST(Channel, DiscardDropsShadow)
{
    auto b = contBoard();
    TaskRuntime rt;
    Channel<int> ch(rt, b->nvram(), "c");
    // Outside any run: exercise the channel surface directly.
    EXPECT_EQ(ch.dirtyBytes(), 0u);
    rt.attach(*b, {});
    b->ctx().prepare([&] {
        ch.set(9);
        EXPECT_GT(ch.dirtyBytes(), 0u);
        ch.discard();
        EXPECT_EQ(ch.dirtyBytes(), 0u);
        EXPECT_EQ(ch.get(), 0);
    });
    mem::ScopedHooks sh(rt.memHooks());
    b->ctx().run();
    EXPECT_EQ(ch.committed(), 0);
}

TEST(Channel, DirtyBytesAreFineGrained)
{
    auto b = contBoard();
    TaskRuntime rt;
    using Arr = std::array<std::uint8_t, 64>;
    Channel<Arr> ch(rt, b->nvram(), "arr");
    rt.addTask("t", [&]() -> TaskId {
        Arr a{}; // all zeros == committed contents
        a[3] = 7;
        a[40] = 9;
        ch.set(a);
        EXPECT_EQ(ch.dirtyBytes(), 2u); // only the changed bytes
        return kTaskDone;
    });
    b->run(rt, {}, kNsPerSec);
}

TEST(TaskRuntime, InterruptedTaskRestartsIdempotently)
{
    auto b = patternBoard(10 * kNsPerMs, 0.5);
    TaskRuntime rt;
    Channel<int> counter(rt, b->nvram(), "n");
    Channel<int> i(rt, b->nvram(), "i");
    const auto tLoop = rt.addTask("loop", [&]() -> TaskId {
        // Non-idempotent-looking read-modify-write: privatization
        // makes the restart safe.
        counter.set(counter.get() + 1);
        b->charge(1200); // long enough that some instances get cut
        i.set(i.get() + 1);
        return i.get() + 1 > 20 ? kTaskDone : 0;
    });
    (void)tLoop;
    rt.setInitial(0);
    const auto res = b->run(rt, {}, 10 * kNsPerSec);
    ASSERT_TRUE(res.completed);
    EXPECT_GT(res.reboots, 0u);
    // Every committed increment happened exactly once.
    EXPECT_EQ(counter.committed(), i.committed());
}

TEST(TaskRuntime, TransitionsAreCounted)
{
    auto b = contBoard();
    TaskRuntime rt;
    const auto t1 = rt.addTask("a", [&]() -> TaskId { return 1; });
    const auto t2 = rt.addTask("b", [&]() -> TaskId { return kTaskDone; });
    (void)t1;
    (void)t2;
    rt.setInitial(0);
    const auto res = b->run(rt, {}, kNsPerSec);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(rt.transitions(), 2u);
}

TEST(InkRuntime, PeriodicEventReactivatesGraph)
{
    auto b = contBoard();
    InkRuntime rt;
    Channel<int> fires(rt, b->nvram(), "fires");
    rt.addTask("tick", [&]() -> TaskId {
        fires.set(fires.get() + 1);
        b->charge(100);
        if (fires.get() >= 5) {
            // Stop the experiment by burning the budget down.
            b->ctx().exitWith(context::ExitReason::TimeLimit);
        }
        return kTaskDone;
    });
    rt.setInitial(0);
    rt.addPeriodicEvent(5 * kNsPerMs, /*priority=*/1, /*root=*/0);
    b->run(rt, {}, kNsPerSec);
    EXPECT_EQ(fires.committed() + (fires.dirtyBytes() ? 1 : 0), 5);
}

TEST(InkRuntime, HigherPriorityEventWins)
{
    auto b = contBoard();
    InkRuntime rt;
    Channel<int> winner(rt, b->nvram(), "winner");
    rt.addTask("low", [&]() -> TaskId {
        winner.set(1);
        b->ctx().exitWith(context::ExitReason::TimeLimit);
        return kTaskDone;
    });
    rt.addTask("high", [&]() -> TaskId {
        winner.set(2);
        b->ctx().exitWith(context::ExitReason::TimeLimit);
        return kTaskDone;
    });
    rt.addTask("seed", [&]() -> TaskId {
        b->charge(20000); // both events become due (equal nextDue)
        return kTaskDone;
    });
    rt.setInitial(2);
    rt.addPeriodicEvent(5 * kNsPerMs, 1, 0);
    rt.addPeriodicEvent(5 * kNsPerMs, 9, 1);
    b->run(rt, {}, kNsPerSec);
    // The shadow write of the winning task may be uncommitted (it
    // exited mid-task), so peek at the privatized value.
    EXPECT_EQ(winner.get(), 2);
}

TEST(Mayfly, AcyclicValidationAcceptsChains)
{
    auto b = contBoard();
    MayflyRuntime rt;
    const auto a = rt.addTask("a", [] { return kTaskDone; });
    const auto c = rt.addTask("b", [] { return kTaskDone; });
    rt.declareEdge(a, c);
    EXPECT_TRUE(rt.validateAcyclic());
}

TEST(Mayfly, AcyclicValidationRejectsLoops)
{
    auto b = contBoard();
    MayflyRuntime rt;
    const auto a = rt.addTask("a", [] { return 1; });
    const auto c = rt.addTask("b", [] { return 0; });
    rt.declareEdge(a, c);
    rt.declareEdge(c, a); // the cuckoo filter's shape
    EXPECT_FALSE(rt.validateAcyclic());
}

TEST(Mayfly, ExpiredInputReroutesDispatch)
{
    auto b = contBoard();
    MayflyRuntime rt;
    Channel<int> data(rt, b->nvram(), "data");
    Channel<int> reSampled(rt, b->nvram(), "resampled");
    Channel<int> consumed(rt, b->nvram(), "consumed");

    TaskId tSample = 0, tDelay = 0, tUse = 0;
    tSample = rt.addTask("sample", [&]() -> TaskId {
        data.set(7);
        reSampled.set(reSampled.get() + 1);
        return tDelay;
    });
    tDelay = rt.addTask("delay", [&]() -> TaskId {
        // The first pass dawdles long enough for the token to age out
        // between its commit and the consumer's dispatch; retries are
        // quick.
        b->charge(reSampled.committed() <= 1 ? 50000 : 1000);
        return tUse;
    });
    tUse = rt.addTask("use", [&]() -> TaskId {
        consumed.set(consumed.get() + 1);
        return kTaskDone;
    });
    rt.setInitial(tSample);
    rt.declareEdge(tSample, tDelay);
    rt.declareEdge(tDelay, tUse);
    rt.constrainInput(tUse, &data, 20 * kNsPerMs, tSample);
    ASSERT_TRUE(rt.validateAcyclic());
    const auto res = b->run(rt, {}, kNsPerSec);
    EXPECT_TRUE(res.completed);
    EXPECT_GT(rt.expiredDispatches(), 0u);
    EXPECT_EQ(consumed.committed(), 1);
    EXPECT_GT(reSampled.committed(), 1);
}

TEST(Mayfly, RestartUntilIteratesWithoutGraphLoops)
{
    auto b = contBoard();
    MayflyRuntime rt;
    Channel<int> n(rt, b->nvram(), "n");
    const auto tStep = rt.addTask("step", [&]() -> TaskId {
        n.set(n.get() + 1);
        return kTaskDone;
    });
    rt.setInitial(tStep);
    rt.restartUntil(tStep, [&] { return n.committed() >= 7; });
    ASSERT_TRUE(rt.validateAcyclic());
    const auto res = b->run(rt, {}, kNsPerSec);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(n.committed(), 7);
}
