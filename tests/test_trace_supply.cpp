/**
 * @file
 * Tests for the trace-driven supply: CSV parse validation, linear
 * interpolation (exact at sample boundaries), wrap vs clamp semantics
 * past the end of a trace shorter than the run, dark gaps spanning
 * multiple boot attempts, byte-identical replay after snapshot/restore
 * (the ticsmc journal contract), and the per-seed start offsets.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "energy/trace_supply.hpp"
#include "support/statebuf.hpp"
#include "support/units.hpp"

namespace ticsim {
namespace {

using energy::EnvTrace;
using energy::TraceSupply;

std::shared_ptr<const EnvTrace>
mustParse(const std::string &text)
{
    std::string err;
    auto t = EnvTrace::parse(text, "<test>", err);
    EXPECT_NE(t, nullptr) << err;
    return t;
}

// ---- parsing -----------------------------------------------------------

TEST(EnvTrace, ParsesCsvWithCommentsAndBlanks)
{
    const auto t = mustParse("# a comment\n"
                             "0, 0.010\n"
                             "\n"
                             "1, 0.020  # trailing comment\n"
                             "2.5, 0\n");
    ASSERT_EQ(t->samples().size(), 3u);
    EXPECT_EQ(t->samples()[0].time, 0);
    EXPECT_DOUBLE_EQ(t->samples()[1].power, 0.020);
    EXPECT_EQ(t->samples()[2].time,
              static_cast<TimeNs>(2.5 * kNsPerSec));
    EXPECT_EQ(t->duration(), static_cast<TimeNs>(2.5 * kNsPerSec));
}

TEST(EnvTrace, RejectsMalformedInput)
{
    std::string err;
    EXPECT_EQ(EnvTrace::parse("", "<t>", err), nullptr);
    EXPECT_EQ(EnvTrace::parse("0,0.01\n", "<t>", err), nullptr)
        << "one sample is not a timeline";
    EXPECT_EQ(EnvTrace::parse("1,0.01\n2,0.02\n", "<t>", err), nullptr)
        << "first sample must sit at t=0";
    EXPECT_EQ(EnvTrace::parse("0,0.01\n1,0.02\n1,0.03\n", "<t>", err),
              nullptr)
        << "sample times must be strictly ascending";
    EXPECT_EQ(EnvTrace::parse("0,0.01\n1,-0.02\n", "<t>", err),
              nullptr)
        << "negative harvest power is meaningless";
    EXPECT_EQ(EnvTrace::parse("0,0.01\n1,nope\n", "<t>", err),
              nullptr);
    EXPECT_EQ(EnvTrace::parse("0 0.01\n1 0.02\n", "<t>", err),
              nullptr)
        << "the separator is a comma";
    EXPECT_FALSE(err.empty());
}

// ---- interpolation -----------------------------------------------------

TEST(EnvTrace, InterpolationIsExactAtSampleBoundaries)
{
    const auto t = mustParse("0,0.010\n1,0.030\n3,0.000\n");
    // Exactly on a sample: that sample's power, no interpolation
    // residue.
    EXPECT_DOUBLE_EQ(t->power(0, false), 0.010);
    EXPECT_DOUBLE_EQ(t->power(1 * kNsPerSec, false), 0.030);
    EXPECT_DOUBLE_EQ(t->power(3 * kNsPerSec, false), 0.000);
    // Midpoints interpolate linearly.
    EXPECT_DOUBLE_EQ(t->power(kNsPerSec / 2, false), 0.020);
    EXPECT_DOUBLE_EQ(t->power(2 * kNsPerSec, false), 0.015);
}

TEST(EnvTrace, WrapAndClampPastTheEnd)
{
    // 2 s trace, probed far past its end — the "trace shorter than
    // the run" case.
    const auto t = mustParse("0,0.010\n1,0.030\n2,0.010\n");
    // Wrap: t modulo duration, so 2.5 s == 0.5 s and 4 s == 0 s.
    EXPECT_DOUBLE_EQ(t->power(2 * kNsPerSec + kNsPerSec / 2, true),
                     0.020);
    EXPECT_DOUBLE_EQ(t->power(4 * kNsPerSec, true), 0.010);
    EXPECT_DOUBLE_EQ(t->power(1001 * kNsPerSec, true), 0.030);
    // Clamp: the last sample's power holds forever.
    EXPECT_DOUBLE_EQ(t->power(2 * kNsPerSec + 1, false), 0.010);
    EXPECT_DOUBLE_EQ(t->power(1000 * kNsPerSec, false), 0.010);
}

// ---- supply dynamics ---------------------------------------------------

TraceSupply::Config
testConfig()
{
    TraceSupply::Config cfg;
    cfg.capacitance = 10e-6;
    cfg.leakage = 0.0;
    return cfg;
}

TEST(TraceSupply, ChargesThroughDarkGapSpanningMultipleBoots)
{
    // 10 s of darkness then strong harvest: a device dying at the
    // start of the gap must report one long off time that lands past
    // the whole gap — fast-forwarded by trace segment, not ground out
    // in 50 us integration steps.
    const auto t = mustParse("0,0\n10,0\n10.1,0.050\n20,0.050\n");
    TraceSupply s(testConfig(), t);
    const auto dead = s.drain(0, kNsPerSec, 0.050);
    ASSERT_TRUE(dead.died); // no harvest, heavy load
    const TimeNs off = s.offTimeAfterDeath(dead.ranFor);
    // Power returns at 10 s; with 50 mW the 10 uF capacitor reaches
    // Von milliseconds later. The off time must cover the whole gap.
    EXPECT_GT(off, 9 * kNsPerSec);
    EXPECT_LT(off, 11 * kNsPerSec);
    EXPECT_GE(s.voltageNow(), s.config().vOn);
}

TEST(TraceSupply, DiesInAGapAndSurvivesUnderHarvest)
{
    const auto t = mustParse("0,0.050\n5,0.050\n5.1,0\n10,0\n");
    TraceSupply s(testConfig(), t);
    // Under harvest a modest load holds: the capacitor stays above
    // Voff for the whole powered stretch.
    const auto ok = s.drain(0, kNsPerSec, 0.010);
    EXPECT_FALSE(ok.died);
    EXPECT_EQ(ok.ranFor, kNsPerSec);
    // In the dark gap a heavy load kills quickly...
    const auto dead =
        s.drain(6 * kNsPerSec, 2 * kNsPerSec, 0.050);
    ASSERT_TRUE(dead.died);
    EXPECT_LT(dead.ranFor, 2 * kNsPerSec);
    // ...and the reboot waits out the rest of the gap, wrapping into
    // the next period's harvest plateau to recharge.
    const TimeNs deathAt = 6 * kNsPerSec + dead.ranFor;
    const TimeNs off = s.offTimeAfterDeath(deathAt);
    EXPECT_GT(deathAt + off, 10 * kNsPerSec);
    EXPECT_LT(off, 5 * kNsPerSec);
}

TEST(TraceSupply, GivesUpAfterMaxOffTimeInEndlessDark)
{
    const auto t = mustParse("0,0\n100,0\n");
    TraceSupply::Config cfg = testConfig();
    cfg.maxOffTime = 10 * kNsPerSec;
    cfg.wrap = true; // endless darkness via wrap
    TraceSupply s(cfg, t);
    const auto dead = s.drain(0, kNsPerSec, 0.050);
    ASSERT_TRUE(dead.died);
    // The give-up cap is reported instead of spinning forever; the
    // board's starvation detector turns this into a DNF.
    EXPECT_EQ(s.offTimeAfterDeath(dead.ranFor), cfg.maxOffTime);
}

TEST(TraceSupply, SnapshotRestoreReplaysByteIdentically)
{
    // The ticsmc journal contract: capture state mid-run, keep
    // running, restore, and the replay must reproduce the original
    // continuation exactly (power is a pure function of time; the
    // capacitor voltage is the whole mutable state).
    const auto t = mustParse("0,0.030\n1,0.000\n2,0.030\n3,0.010\n");
    TraceSupply::Config cfg = testConfig();
    cfg.leakage = 1e-6;
    TraceSupply s(cfg, t);
    const TimeNs boot = s.offTimeAfterDeath(0);
    (void)s.drain(boot, 100 * kNsPerMs, 0.020);

    StateWriter w;
    s.saveState(w);
    const StateBlob blob = w.take();

    const TimeNs at = boot + 100 * kNsPerMs;
    const auto first = s.drain(at, 2 * kNsPerSec, 0.025);
    const Volts vFirst = s.voltageNow();

    StateReader r(blob);
    s.loadState(r);
    EXPECT_TRUE(r.exhausted());
    const auto replay = s.drain(at, 2 * kNsPerSec, 0.025);

    EXPECT_EQ(first.died, replay.died);
    EXPECT_EQ(first.ranFor, replay.ranFor);
    EXPECT_EQ(vFirst, s.voltageNow()); // bit-exact, not approximate
}

TEST(TraceSupply, StartOffsetShiftsTheTimeline)
{
    const auto t = mustParse("0,0\n5,0\n5.5,0.050\n10,0.050\n");
    TraceSupply::Config cfg = testConfig();
    cfg.startOffset = static_cast<TimeNs>(5.5 * kNsPerSec);
    TraceSupply s(cfg, t);
    // Virtual time 0 now lands in the harvest plateau.
    EXPECT_DOUBLE_EQ(s.harvestAt(0), 0.050);
    // And wraps back into darkness after 4.5 s + duration wrap.
    EXPECT_DOUBLE_EQ(s.harvestAt(6 * kNsPerSec), 0.0);
}

TEST(TraceSupply, OffsetForSeedIsStableAndSpread)
{
    const auto t = mustParse("0,0.010\n86400,0.010\n");
    // Pinned values: changing the mixer silently re-shuffles every
    // env cell's device-day, which must show up here first.
    const TimeNs a = TraceSupply::offsetForSeed(11, *t);
    const TimeNs b = TraceSupply::offsetForSeed(12, *t);
    EXPECT_EQ(a, TraceSupply::offsetForSeed(11, *t));
    EXPECT_NE(a, b);
    EXPECT_LT(a, t->duration());
    EXPECT_LT(b, t->duration());
}

TEST(TraceSupply, CommittedTracesLoadAndValidate)
{
    // The three committed environments must stay loadable; forEnv
    // caches per process, so repeated lookups share one object.
    for (const char *name :
         {"solar_diurnal", "rf_mobile", "thermal_gradient"}) {
        std::string err;
        const auto t = EnvTrace::forEnv(name, err);
        ASSERT_NE(t, nullptr) << name << ": " << err;
        EXPECT_GE(t->samples().size(), 2u);
        EXPECT_EQ(t.get(), EnvTrace::forEnv(name, err).get());
    }
    std::string err;
    EXPECT_EQ(EnvTrace::forEnv("no_such_env", err), nullptr);
    EXPECT_FALSE(err.empty());
}

} // namespace
} // namespace ticsim
