/**
 * @file
 * Tests specific to the checkpointing baselines: MementOS-like
 * snapshot/restore of tracked globals and trigger gating, and
 * Chinchilla-like versioning, heuristic spacing and its declared
 * limitations.
 */

#include <gtest/gtest.h>

#include "board/board.hpp"
#include "mem/nv.hpp"
#include "runtimes/chinchilla.hpp"
#include "runtimes/mementos.hpp"
#include "runtimes/plainc.hpp"
#include "tics/runtime.hpp"

using namespace ticsim;
using namespace ticsim::runtimes;

namespace {

std::unique_ptr<board::Board>
contBoard()
{
    return std::make_unique<board::Board>(
        board::BoardConfig{}, std::make_unique<energy::ContinuousSupply>(),
        std::make_unique<timekeeper::PerfectTimekeeper>());
}

} // namespace

TEST(Mementos, TrackedGlobalsRollBackOnRestore)
{
    auto b = contBoard();
    MementosConfig cfg;
    cfg.trigger = MementosConfig::Trigger::Every;
    MementosRuntime rt(cfg);
    mem::nv<int> x(b->nvram(), "x", 10);
    rt.trackGlobals(x.raw(), sizeof(int));
    int attempt = 0;
    const auto res = b->run(
        rt,
        [&] {
            rt.triggerPoint(); // checkpoint (Every)
            x = x.get() + 1;
            if (++attempt < 3)
                b->ctx().exitWith(context::ExitReason::PowerFail);
        },
        kNsPerSec);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(x.get(), 11); // snapshot restore undid the replays
}

TEST(Mementos, UntrackedGlobalsCorruptUnderReplay)
{
    // The contrast case: a global the programmer forgot to register
    // keeps its partial writes and double-applies — MementOS offers no
    // undo log to save it.
    auto b = contBoard();
    MementosConfig cfg;
    cfg.trigger = MementosConfig::Trigger::Every;
    MementosRuntime rt(cfg);
    mem::nv<int> x(b->nvram(), "x", 10);
    int attempt = 0;
    const auto res = b->run(
        rt,
        [&] {
            rt.triggerPoint();
            x = x.get() + 1;
            if (++attempt < 3)
                b->ctx().exitWith(context::ExitReason::PowerFail);
        },
        kNsPerSec);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(x.get(), 13); // replayed twice: the Fig. 3a violation
}

TEST(Mementos, TimerTriggerGatesCheckpoints)
{
    auto b = contBoard();
    MementosConfig cfg;
    cfg.trigger = MementosConfig::Trigger::Timer;
    cfg.timerPeriod = 10 * kNsPerMs;
    MementosRuntime rt(cfg);
    b->run(
        rt,
        [&] {
            for (int i = 0; i < 100; ++i) {
                rt.triggerPoint();
                b->charge(500); // 100 x 0.5 ms = 50 ms total
            }
        },
        kNsPerSec);
    // ~50 ms / 10 ms period: a handful, not a hundred.
    EXPECT_GE(rt.checkpointsTotal(), 4u);
    EXPECT_LE(rt.checkpointsTotal(), 7u);
}

TEST(Mementos, VoltageTriggerFiresBelowThreshold)
{
    energy::HarvestingSupply::Config scfg;
    auto b = std::make_unique<board::Board>(
        board::BoardConfig{},
        std::make_unique<energy::HarvestingSupply>(
            scfg, std::make_unique<energy::ConstantHarvester>(0.2e-3)),
        std::make_unique<timekeeper::PerfectTimekeeper>());
    MementosConfig cfg;
    cfg.trigger = MementosConfig::Trigger::Voltage;
    cfg.voltageThreshold = 2.4;
    MementosRuntime rt(cfg);
    std::uint64_t earlyCkpts = ~0ULL;
    b->run(
        rt,
        [&] {
            for (int i = 0; i < 200; ++i) {
                rt.triggerPoint();
                b->charge(200);
                if (i == 10)
                    earlyCkpts = rt.checkpointsTotal();
            }
        },
        kNsPerSec);
    // No checkpoints while the capacitor is still above threshold;
    // checkpoints appear as it sags toward brown-out.
    EXPECT_EQ(earlyCkpts, 0u);
    EXPECT_GT(rt.checkpointsTotal(), 0u);
}

TEST(Chinchilla, VersionedGlobalsRollBack)
{
    auto b = contBoard();
    ChinchillaRuntime rt;
    mem::nv<int> x(b->nvram(), "x", 5);
    int attempt = 0;
    const auto res = b->run(
        rt,
        [&] {
            rt.checkpointNow();
            x = x.get() + 1; // versioned via the write hook
            if (++attempt < 4)
                b->ctx().exitWith(context::ExitReason::PowerFail);
        },
        kNsPerSec);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(x.get(), 6);
    EXPECT_GE(rt.stats().counterValue("rollbackEntries"), 3u);
}

TEST(Chinchilla, HeuristicSpacingLimitsCheckpoints)
{
    auto b = contBoard();
    ChinchillaConfig cfg;
    cfg.minCheckpointSpacing = 20 * kNsPerMs;
    ChinchillaRuntime rt(cfg);
    b->run(
        rt,
        [&] {
            for (int i = 0; i < 200; ++i) {
                rt.triggerPoint(); // over-instrumented sites
                b->charge(500);
            }
        },
        kNsPerSec);
    // 100 ms of work / 20 ms spacing.
    EXPECT_GE(rt.checkpointsTotal(), 4u);
    EXPECT_LE(rt.checkpointsTotal(), 6u);
}

TEST(Chinchilla, DeclaresNoRecursionSupport)
{
    ChinchillaRuntime rt;
    EXPECT_FALSE(rt.supportsRecursion());
    tics::TicsRuntime ticsRt;
    EXPECT_TRUE(ticsRt.supportsRecursion());
    PlainCRuntime plain;
    EXPECT_TRUE(plain.supportsRecursion());
}

TEST(PlainC, RestartLosesVolatileKeepsNv)
{
    auto b = std::make_unique<board::Board>(
        board::BoardConfig{},
        std::make_unique<energy::PatternSupply>(10 * kNsPerMs, 0.5),
        std::make_unique<timekeeper::PerfectTimekeeper>());
    PlainCRuntime rt;
    mem::nv<int> nvCounter(b->nvram(), "c");
    int volatileCounter = 0; // host-side stand-in for a stack var
    int boots = 0;
    const auto res = b->run(
        rt,
        [&] {
            ++boots;
            volatileCounter = 0; // fresh stack every boot
            for (int i = 0; i < 100; ++i) {
                ++volatileCounter;
                nvCounter += 1;
                b->charge(200);
            }
        },
        48 * kNsPerMs);
    EXPECT_FALSE(res.completed);
    EXPECT_GT(boots, 1);
    // FRAM state accumulated across restarts; stack state did not.
    EXPECT_GT(nvCounter.get(), volatileCounter);
}
