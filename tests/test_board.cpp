/**
 * @file
 * Unit tests for the Board: cycle charging and brown-out semantics,
 * time-budget enforcement, starvation detection, peripheral costs, and
 * the ViolationMonitor's scoring of all three time-violation classes.
 */

#include <gtest/gtest.h>

#include "board/board.hpp"
#include "board/runtime.hpp"
#include "runtimes/plainc.hpp"

using namespace ticsim;
using namespace ticsim::board;

namespace {

std::unique_ptr<Board>
contBoard()
{
    return std::make_unique<Board>(
        BoardConfig{}, std::make_unique<energy::ContinuousSupply>(),
        std::make_unique<timekeeper::PerfectTimekeeper>());
}

std::unique_ptr<Board>
patternBoard(TimeNs period, double duty, BoardConfig cfg = {})
{
    return std::make_unique<Board>(
        cfg, std::make_unique<energy::PatternSupply>(period, duty),
        std::make_unique<timekeeper::PerfectTimekeeper>());
}

} // namespace

TEST(Board, ChargeAdvancesTimeAndCycles)
{
    auto b = contBoard();
    runtimes::PlainCRuntime rt;
    TimeNs seen = 0;
    Cycles cyc = 0;
    const auto res = b->run(
        rt,
        [&] {
            b->charge(1000);
            seen = b->now();
            cyc = b->mcu().cycles();
        },
        kNsPerSec);
    EXPECT_TRUE(res.completed);
    // 1000 cycles at 1 MHz = 1 ms (plus the boot cost).
    EXPECT_GE(seen, 1000 * kNsPerUs);
    EXPECT_GE(cyc, 1000u);
}

TEST(Board, TimeBudgetEndsRun)
{
    auto b = contBoard();
    runtimes::PlainCRuntime rt;
    std::uint64_t loops = 0;
    const auto res = b->run(
        rt,
        [&] {
            for (;;) {
                b->charge(100);
                ++loops;
            }
        },
        50 * kNsPerMs);
    EXPECT_FALSE(res.completed);
    EXPECT_FALSE(res.starved);
    EXPECT_GT(loops, 0u);
    EXPECT_LE(res.elapsed, 51 * kNsPerMs);
}

TEST(Board, PowerFailureRebootsAndOffTimeElapses)
{
    auto b = patternBoard(20 * kNsPerMs, 0.5);
    runtimes::PlainCRuntime rt;
    std::uint64_t boots = 0;
    const auto res = b->run(
        rt,
        [&] {
            ++boots;
            for (;;)
                b->charge(500);
        },
        95 * kNsPerMs);
    EXPECT_FALSE(res.completed);
    EXPECT_GE(res.reboots, 4u);
    // One boot per failure (plus the initial boot, unless the budget
    // expired during the final dark period).
    EXPECT_GE(boots, res.reboots);
    EXPECT_LE(boots, res.reboots + 1);
    // Roughly half the elapsed time was dark.
    EXPECT_NEAR(static_cast<double>(res.onTime) /
                    static_cast<double>(res.elapsed),
                0.5, 0.15);
}

TEST(Board, StarvationDetected)
{
    BoardConfig cfg;
    cfg.starvationRebootLimit = 20;
    auto b = patternBoard(10 * kNsPerMs, 0.5, cfg);

    // A runtime that never marks progress.
    struct NoProgress : Runtime {
        const char *name() const override { return "noprog"; }
        bool
        onPowerOn() override
        {
            board_->ctx().prepare([this] {
                for (;;)
                    board_->charge(500);
            });
            return true;
        }
    } rt;
    const auto res = b->run(rt, {}, 10 * kNsPerSec);
    EXPECT_TRUE(res.starved);
    EXPECT_GE(res.reboots, 20u);
}

TEST(Board, PeripheralsChargeCycles)
{
    auto b = contBoard();
    runtimes::PlainCRuntime rt;
    Cycles afterSample = 0, afterRadio = 0, before = 0;
    b->run(
        rt,
        [&] {
            before = b->mcu().cycles();
            (void)b->sampleAccel();
            afterSample = b->mcu().cycles();
            std::uint8_t pl[8] = {};
            b->radioSend(pl, sizeof(pl));
            afterRadio = b->mcu().cycles();
        },
        kNsPerSec);
    EXPECT_EQ(afterSample - before, b->costs().sensorSample);
    EXPECT_EQ(afterRadio - afterSample,
              device::CostModel::linear(b->costs().radioSend,
                                        b->costs().radioPerByte, 8));
    EXPECT_EQ(b->radio().sentCount(), 1u);
    EXPECT_EQ(b->radio().packets()[0].payload.size(), 8u);
}

TEST(Board, SensorsAreDeterministicPerSeed)
{
    BoardConfig cfg;
    cfg.seed = 99;
    auto b1 = std::make_unique<Board>(
        cfg, std::make_unique<energy::ContinuousSupply>(),
        std::make_unique<timekeeper::PerfectTimekeeper>());
    auto b2 = std::make_unique<Board>(
        cfg, std::make_unique<energy::ContinuousSupply>(),
        std::make_unique<timekeeper::PerfectTimekeeper>());
    const auto s1 = b1->accel().sample(5 * kNsPerMs);
    const auto s2 = b2->accel().sample(5 * kNsPerMs);
    EXPECT_EQ(s1.x, s2.x);
    EXPECT_EQ(s1.y, s2.y);
    EXPECT_EQ(s1.z, s2.z);
}

TEST(Accelerometer, RegimesDiffer)
{
    device::Accelerometer acc(Rng(3), 500 * kNsPerMs);
    EXPECT_FALSE(acc.movingAt(100 * kNsPerMs));
    EXPECT_TRUE(acc.movingAt(600 * kNsPerMs));
    // Moving-regime magnitude swings much harder than stationary.
    std::int32_t statSpan = 0, movSpan = 0;
    std::int32_t lo = 30000, hi = -30000;
    for (int i = 0; i < 50; ++i) {
        const auto s = acc.sample(100 * kNsPerMs + i * 1000);
        lo = std::min<std::int32_t>(lo, s.x);
        hi = std::max<std::int32_t>(hi, s.x);
    }
    statSpan = hi - lo;
    lo = 30000;
    hi = -30000;
    for (int i = 0; i < 50; ++i) {
        const auto s = acc.sample(600 * kNsPerMs + i * 2000000);
        lo = std::min<std::int32_t>(lo, s.x);
        hi = std::max<std::int32_t>(hi, s.x);
    }
    movSpan = hi - lo;
    EXPECT_GT(movSpan, statSpan * 3);
}

// ---- ViolationMonitor ------------------------------------------------------

TEST(ViolationMonitor, TimelyBranchBothArms)
{
    ViolationMonitor m;
    m.branchArm("b", 1, 0);
    m.branchArm("b", 1, 0); // same arm re-executed: fine
    EXPECT_EQ(m.counts(ViolationKind::TimelyBranch).observed, 0u);
    m.branchArm("b", 1, 1); // other arm: violation
    EXPECT_EQ(m.counts(ViolationKind::TimelyBranch).observed, 1u);
    m.branchArm("b", 1, 0); // counted once per instance
    EXPECT_EQ(m.counts(ViolationKind::TimelyBranch).observed, 1u);
    m.branchArm("b", 2, 1); // new instance, single arm
    EXPECT_EQ(m.counts(ViolationKind::TimelyBranch).observed, 1u);
    EXPECT_EQ(m.counts(ViolationKind::TimelyBranch).potential, 5u);
}

TEST(ViolationMonitor, MisalignmentTolerance)
{
    ViolationMonitor m;
    m.dataSampled("d", 7, 100 * kNsPerMs);
    m.timestampAssigned("d", 7, 104 * kNsPerMs, 10 * kNsPerMs);
    EXPECT_EQ(m.counts(ViolationKind::Misalignment).observed, 0u);
    m.timestampAssigned("d", 7, 300 * kNsPerMs, 10 * kNsPerMs);
    EXPECT_EQ(m.counts(ViolationKind::Misalignment).observed, 1u);
    // Timestamp for never-sampled data is always misaligned.
    m.timestampAssigned("d", 8, 300 * kNsPerMs, 10 * kNsPerMs);
    EXPECT_EQ(m.counts(ViolationKind::Misalignment).observed, 2u);
}

TEST(ViolationMonitor, ExpirationAges)
{
    ViolationMonitor m;
    m.dataSampled("d", 1, 0);
    m.dataConsumed("d", 1, 200 * kNsPerMs, 150 * kNsPerMs);
    EXPECT_EQ(m.counts(ViolationKind::Expiration).observed, 0u);
    m.dataConsumed("d", 1, 200 * kNsPerMs, 450 * kNsPerMs);
    EXPECT_EQ(m.counts(ViolationKind::Expiration).observed, 1u);
    m.dataConsumed("unknown", 9, 200 * kNsPerMs, kNsPerSec);
    EXPECT_EQ(m.counts(ViolationKind::Expiration).observed, 1u);
    EXPECT_EQ(m.counts(ViolationKind::Expiration).potential, 3u);
}

TEST(ViolationMonitor, PoisonedBranchNeverRecounts)
{
    // Once both arms of one logical evaluation have been observed the
    // instance is poisoned: any further arm reports — same arm, other
    // arm, repeated flips — must not add observations.
    ViolationMonitor m;
    m.branchArm("b", 1, 0);
    m.branchArm("b", 1, 1);
    EXPECT_EQ(m.counts(ViolationKind::TimelyBranch).observed, 1u);
    m.branchArm("b", 1, 1);
    m.branchArm("b", 1, 0);
    m.branchArm("b", 1, 1);
    EXPECT_EQ(m.counts(ViolationKind::TimelyBranch).observed, 1u);
    // A different branch id with the same instance number is distinct.
    m.branchArm("c", 1, 0);
    m.branchArm("c", 1, 1);
    EXPECT_EQ(m.counts(ViolationKind::TimelyBranch).observed, 2u);
    EXPECT_EQ(m.counts(ViolationKind::TimelyBranch).potential, 7u);
}

TEST(ViolationMonitor, MisalignmentExactlyAtToleranceIsFine)
{
    // The boundary is strict: |ts - truth| > tolerance violates,
    // equality does not (in either direction).
    ViolationMonitor m;
    m.dataSampled("d", 1, 1000);
    m.timestampAssigned("d", 1, 1010, 10); // late by exactly tolerance
    m.timestampAssigned("d", 1, 990, 10);  // early by exactly tolerance
    EXPECT_EQ(m.counts(ViolationKind::Misalignment).observed, 0u);
    m.timestampAssigned("d", 1, 1011, 10); // one ns over
    EXPECT_EQ(m.counts(ViolationKind::Misalignment).observed, 1u);
    m.timestampAssigned("d", 1, 989, 10); // one ns under
    EXPECT_EQ(m.counts(ViolationKind::Misalignment).observed, 2u);
    EXPECT_EQ(m.counts(ViolationKind::Misalignment).potential, 4u);
}

TEST(ViolationMonitor, ExpirationExactlyAtLifetimeIsFine)
{
    ViolationMonitor m;
    m.dataSampled("d", 1, 500);
    m.dataConsumed("d", 1, 100, 600); // age == lifetime: still fresh
    EXPECT_EQ(m.counts(ViolationKind::Expiration).observed, 0u);
    m.dataConsumed("d", 1, 100, 601); // one ns past
    EXPECT_EQ(m.counts(ViolationKind::Expiration).observed, 1u);
    // Consumption timestamped before acquisition (clock skew after a
    // reboot) clamps age to zero rather than underflowing.
    m.dataConsumed("d", 1, 100, 400);
    EXPECT_EQ(m.counts(ViolationKind::Expiration).observed, 1u);
    EXPECT_EQ(m.counts(ViolationKind::Expiration).potential, 3u);
}

TEST(ViolationMonitor, ResetClearsEverything)
{
    ViolationMonitor m;
    m.dataSampled("d", 1, 0);
    m.dataConsumed("d", 1, 1, kNsPerSec);
    m.branchArm("b", 1, 0);
    m.branchArm("b", 1, 1);
    m.reset();
    EXPECT_EQ(m.counts(ViolationKind::Expiration).observed, 0u);
    EXPECT_EQ(m.counts(ViolationKind::TimelyBranch).potential, 0u);
}
